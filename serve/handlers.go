package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/stream"
	"darco/internal/workload"
	"darco/obs"
	"darco/store"
)

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := export.EncodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.json", s.handleExport("json"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.csv", s.handleExport("csv"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.ndjson", s.handleExport("ndjson"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.html", s.handleExport("html"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/profiles", s.handleProfiles)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSubmitBytes bounds a submission body: load must shed at the edge
// before a request is buffered, not after MaxScenarios is parsed.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is buffered whole before parsing: the raw bytes are the
	// submission's durable representation — journaled with the job and
	// replayed through this same validator after a restart.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	var spec *jobSpec
	if err == nil {
		spec, err = s.decodeSubmit(bytes.NewReader(raw))
	}
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	// Adopt the caller's trace context (a coordinator submitting a
	// shard stamps X-Darco-Trace) or start a fresh trace for this job.
	traceID, parentSpan, ok := obs.ExtractTrace(r.Header)
	if !ok {
		traceID = obs.NewTraceID()
	}
	j, err := s.submit(spec, raw, traceID, parentSpan)
	switch {
	case errors.Is(err, errQueueFull):
		// Backpressure: the queue is bounded so load sheds at the
		// edge; clients retry with the advertised delay.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, errClosing):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleList serves the job listing in submission order. ?state=
// filters it to the named lifecycle states (comma-separated, e.g.
// ?state=interrupted or ?state=queued,running) — the first slice of
// the job-query API, and what the sched coordinator uses to find a
// restarted worker's interrupted shards. Unknown states are a 400 so
// a typo cannot read as "no matches".
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter, err := ParseStateFilter(r.URL.Query().Get("state"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs := s.jobs.list()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		if st := j.status(); filter.Match(st.State) {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// StateFilter is a parsed ?state= job-list filter; the zero value
// matches every state.
type StateFilter struct {
	states map[JobState]bool
}

// knownStates are the values ?state= accepts. The coordinator-only
// "degraded" state is included so one filter grammar serves both
// daemons' listings.
var knownStates = map[JobState]bool{
	JobQueued: true, JobRunning: true, JobDone: true,
	JobFailed: true, JobCancelled: true, JobInterrupted: true,
	JobState("degraded"): true,
}

// ParseStateFilter parses a comma-separated ?state= value. Empty
// matches everything; unknown names are an error.
func ParseStateFilter(q string) (StateFilter, error) {
	if q == "" {
		return StateFilter{}, nil
	}
	f := StateFilter{states: make(map[JobState]bool)}
	for _, name := range strings.Split(q, ",") {
		st := JobState(strings.TrimSpace(name))
		if !knownStates[st] {
			return StateFilter{}, fmt.Errorf("unknown state %q in ?state=", st)
		}
		f.states[st] = true
	}
	return f, nil
}

// Match reports whether the filter admits st.
func (f StateFilter) Match(st JobState) bool {
	return f.states == nil || f.states[st]
}

// lookup resolves the {id} path value, writing the 404 itself when the
// job does not exist.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancel stops a queued or running job. Cancelling is
// asynchronous — the response reports the state observed after the
// cancel was issued, which may still be "running" until the campaign
// observes its context (within one engine check interval) — and
// idempotent: cancelling a terminal job changes nothing.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.status().State.Terminal() {
		// Journaled before the cancel takes effect: if the daemon dies
		// before the job observes its context (it may still be deep in
		// the queue), the restarted daemon must not re-run a job the
		// client already cancelled.
		s.journal(store.Record{Kind: store.KindCancelRequested, Job: j.id})
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleExport renders a terminal job's stored scenario rows in the
// requested format, with darco/export's deterministic defaults:
// export.json and export.csv bytes for a completed job match an
// offline export of the same scenarios, and a job restored from the
// durable store serves the same bytes the pre-restart daemon would
// have. ?wall=1 opts into wall-clock metrics (served from the stored
// wall-inclusive rows).
func (s *Server) handleExport(format string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(w, r)
		if !ok {
			return
		}
		rows, wallMS, parallelism, err := j.resultRows()
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		if err := WriteExport(w, r, format, rows, wallMS, parallelism); err != nil {
			// Headers are gone; all we can do is drop the connection.
			s.log.Error("export write failed", "format", format, "job_id", j.id, "err", err)
		}
	}
}

// WriteExport renders a job's stored wall-inclusive rows in one of the
// four export formats ("json", "csv", "ndjson", "html") with the
// service's semantics: deterministic darco/export defaults unless the
// request carries ?wall=1, which opts into the wall-clock columns plus
// the campaign-level wall/parallelism fields in the JSON document.
// Shared with the sched coordinator so a federated job's exports go
// through exactly the renderer a single daemon uses.
func WriteExport(w http.ResponseWriter, r *http.Request, format string, rows []export.Row, wallMS float64, parallelism int) error {
	var opts []export.Option
	if r.URL.Query().Get("wall") == "1" {
		opts = append(opts, export.WithWallTimes())
	} else {
		rows = export.StripWall(rows)
	}
	switch format {
	case "json":
		doc := export.NewRowReport(rows)
		if len(opts) > 0 {
			doc.WallMS = wallMS
			doc.Workers = parallelism
		}
		w.Header().Set("Content-Type", "application/json")
		return export.WriteReport(w, doc)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		return export.WriteCSVRows(w, rows, opts...)
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		return export.WriteNDJSONRows(w, rows)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		return export.WriteHTMLRows(w, rows, opts...)
	}
	return fmt.Errorf("unknown export format %q", format)
}

// handleEvents streams a job's frames as SSE (default) or NDJSON
// (?format=ndjson). The stream opens with a state snapshot, then the
// replayed prefix of frames the subscriber missed (bounded by the
// replay ring — a ring that no longer reaches the start is announced
// with an EventDropped marker), then live scenario/telemetry/state
// frames while the job runs, ending with a final state frame once the
// job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	stream.ServeStream(w, r, j.events, EventState, func() any { return j.status() })
}

// ProfileInfo describes one submittable workload.
type ProfileInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []ProfileInfo
	for _, p := range workload.Suites() {
		out = append(out, ProfileInfo{Name: p.Name, Suite: p.Suite})
	}
	writeJSON(w, http.StatusOK, out)
}

// Health is the /healthz payload. Version and WorkerID identify the
// build and the pool member — the sched coordinator's health probes
// read them to label workers, and Status is what its placement checks.
type Health struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	WorkerID      string  `json:"worker_id"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Jobs          int     `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Version:       darco.Version,
		WorkerID:      s.opts.WorkerID,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueCapacity,
		Jobs:          len(s.jobs.list()),
	})
}

// handleMetrics serves the daemon's obs.Registry as Prometheus text
// exposition: jobs by state, queue pressure, scenario throughput,
// stream fan-out, queue-wait/scenario-wall/store-latency histograms,
// and the engine hot-path counters of obs-enabled jobs. State families
// are recomputed from the job registry at scrape time (see
// serverMetrics), so a restored daemon scrapes correctly from its
// first request.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.reg.WritePrometheus(w)
}
