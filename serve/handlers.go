package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"darco/export"
	"darco/internal/workload"
)

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := export.EncodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.json", s.handleExport("json"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.csv", s.handleExport("csv"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.ndjson", s.handleExport("ndjson"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.html", s.handleExport("html"))
	mux.HandleFunc("GET /api/v1/profiles", s.handleProfiles)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// maxSubmitBytes bounds a submission body: load must shed at the edge
// before a request is buffered, not after MaxScenarios is parsed.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := s.decodeSubmit(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	j, err := s.submit(spec)
	switch {
	case errors.Is(err, errQueueFull):
		// Backpressure: the queue is bounded so load sheds at the
		// edge; clients retry with the advertised delay.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, errClosing):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves the {id} path value, writing the 404 itself when the
// job does not exist.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancel stops a queued or running job. Cancelling is
// asynchronous — the response reports the state observed after the
// cancel was issued, which may still be "running" until the campaign
// observes its context (within one engine check interval) — and
// idempotent: cancelling a terminal job changes nothing.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleExport renders a terminal job's stored CampaignReport in the
// requested format, with darco/export's deterministic defaults:
// export.json and export.csv bytes for a completed job match an
// offline export of the same scenarios. ?wall=1 opts into wall-clock
// metrics.
func (s *Server) handleExport(format string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(w, r)
		if !ok {
			return
		}
		rep, err := j.result()
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		var opts []export.Option
		if r.URL.Query().Get("wall") == "1" {
			opts = append(opts, export.WithWallTimes())
		}
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			err = export.WriteJSON(w, rep, opts...)
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			err = export.WriteCSV(w, rep, opts...)
		case "ndjson":
			w.Header().Set("Content-Type", "application/x-ndjson")
			err = export.WriteNDJSON(w, rep, opts...)
		case "html":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			err = export.WriteHTML(w, rep, opts...)
		}
		if err != nil {
			// Headers are gone; all we can do is drop the connection.
			s.logf("export %s for %s: %v", format, j.id, err)
		}
	}
}

// handleEvents streams a job's live frames as SSE (default) or NDJSON
// (?format=ndjson). The stream opens with a state snapshot, carries
// scenario/telemetry/state frames while the job runs, and ends with a
// final state frame once the job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}

	// Subscribe before snapshotting so no frame between the snapshot
	// and the loop is lost; state frames are idempotent snapshots, so
	// the duplicate a subscribe/transition race can produce is safe.
	ch := j.events.subscribe()
	defer j.events.unsubscribe(ch)
	if err := writeFrame(w, ndjson, EventState, j.status()); err != nil {
		return
	}
	flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Terminal: re-send the final status so even a consumer
				// whose buffer dropped the transition sees the outcome.
				writeFrame(w, ndjson, EventState, j.status())
				flush()
				return
			}
			if err := writeFrame(w, ndjson, ev.kind, ev.data); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// ProfileInfo describes one submittable workload.
type ProfileInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []ProfileInfo
	for _, p := range workload.Suites() {
		out = append(out, ProfileInfo{Name: p.Name, Suite: p.Suite})
	}
	writeJSON(w, http.StatusOK, out)
}

// Health is the /healthz payload.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Jobs          int     `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Jobs:          len(s.jobs.list()),
	})
}

// logf reports server-side failures that have no HTTP channel left
// (mid-stream export errors); silent unless Options.Logf is set.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
