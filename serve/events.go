package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"darco/export"
	"darco/telemetry"
)

// Event kinds on a job's live stream.
const (
	// EventState carries a JobStatus snapshot; emitted on every state
	// transition, as the first frame of every stream, and as the final
	// frame before the stream ends. State events are idempotent
	// snapshots — consumers may see the same state more than once.
	EventState = "state"
	// EventScenario carries a ScenarioEvent as each scenario finishes.
	EventScenario = "scenario"
	// EventTelemetry carries a TelemetryEvent per completed
	// instruction-mix window of an in-flight scenario.
	EventTelemetry = "telemetry"
)

// ScenarioEvent is the payload of one scenario-completion frame: the
// same deterministic export row the CSV/NDJSON exporters write, plus
// the scenario's index in campaign order. Rows arrive in completion
// order; reorder on Index if scenario order matters.
type ScenarioEvent struct {
	Job   string     `json:"job"`
	Index int        `json:"scenario_index"`
	Row   export.Row `json:"row"`
}

// TelemetryEvent is the payload of one instruction-mix window frame.
type TelemetryEvent struct {
	Job      string           `json:"job"`
	Index    int              `json:"scenario_index"`
	Scenario string           `json:"scenario"`
	Window   telemetry.Window `json:"window"`
}

// event is one frame queued for a job's subscribers.
type event struct {
	kind string
	data any // immutable snapshot, shared across subscribers
}

// subscriberBuffer is each stream subscriber's channel depth. The
// stream is lossy by design: a subscriber that cannot drain this many
// frames drops the newest ones (the terminal state is re-sent at
// stream end, so outcomes are never lost — only intermediate telemetry
// resolution).
const subscriberBuffer = 256

// broadcaster fans a job's event frames out to any number of stream
// subscribers. Publishing never blocks on a slow subscriber.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan event]struct{}
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan event]struct{})}
}

// subscribe registers a new subscriber channel. On an already-closed
// broadcaster (terminal job) the returned channel is closed, so the
// consumer's drain loop ends immediately.
func (b *broadcaster) subscribe() chan event {
	ch := make(chan event, subscriberBuffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs[ch] = struct{}{}
	return ch
}

// unsubscribe removes ch; safe after close.
func (b *broadcaster) unsubscribe(ch chan event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
	}
}

// publish queues one frame to every subscriber, dropping it for
// subscribers whose buffers are full.
func (b *broadcaster) publish(kind string, data any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- event{kind: kind, data: data}:
		default: // slow subscriber: drop rather than stall the job
		}
	}
}

// close ends every subscriber's stream. Publishing after close is a
// no-op.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// writeFrame writes one event frame in SSE framing ("event:"/"data:"
// lines and a blank-line terminator) or, when ndjson is set, as one
// {"event":...,"data":...} line.
func writeFrame(w io.Writer, ndjson bool, kind string, data any) error {
	blob, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if ndjson {
		_, err = fmt.Fprintf(w, "{\"event\":%q,\"data\":%s}\n", kind, blob)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, blob)
	return err
}
