package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"darco/export"
	"darco/telemetry"
)

// Event kinds on a job's live stream.
const (
	// EventState carries a JobStatus snapshot; emitted on every state
	// transition, as the first frame of every stream, and as the final
	// frame before the stream ends. State events are idempotent
	// snapshots — consumers may see the same state more than once.
	EventState = "state"
	// EventScenario carries a ScenarioEvent as each scenario finishes.
	EventScenario = "scenario"
	// EventTelemetry carries a TelemetryEvent per completed
	// instruction-mix window of an in-flight scenario.
	EventTelemetry = "telemetry"
	// EventDropped carries a DroppedEvent wherever the stream lost
	// frames: a subscriber that could not drain fast enough, or a
	// replay window that no longer reaches back to the job's start.
	// Consumers see exactly where the gap is and how big it was,
	// instead of a silent skip.
	EventDropped = "dropped"
)

// ScenarioEvent is the payload of one scenario-completion frame: the
// same deterministic export row the CSV/NDJSON exporters write, plus
// the scenario's index in campaign order. Rows arrive in completion
// order; reorder on Index if scenario order matters.
type ScenarioEvent struct {
	Job   string     `json:"job"`
	Index int        `json:"scenario_index"`
	Row   export.Row `json:"row"`
}

// TelemetryEvent is the payload of one instruction-mix window frame.
type TelemetryEvent struct {
	Job      string           `json:"job"`
	Index    int              `json:"scenario_index"`
	Scenario string           `json:"scenario"`
	Window   telemetry.Window `json:"window"`
}

// DroppedEvent is the payload of a dropped marker: how many frames are
// missing at this point of the stream.
type DroppedEvent struct {
	Count uint64 `json:"dropped"`
}

// subscriberBuffer is each stream subscriber's channel depth. A
// subscriber that cannot drain this many frames loses the newest ones,
// but the loss is explicit: the next frame it receives is an
// EventDropped marker carrying the gap size, and the terminal state is
// re-sent at stream end, so outcomes are never lost — only
// intermediate telemetry resolution.
const subscriberBuffer = 256

// defaultReplayBuffer bounds the per-job replay history when
// Options.ReplayBuffer does not choose one.
const defaultReplayBuffer = 1024

// subscriber is one stream consumer: its frame channel plus the count
// of frames dropped since it last kept up, owed to it as a marker.
type subscriber struct {
	ch      chan event
	dropped uint64
}

// event is one frame queued for a job's subscribers.
type event struct {
	kind string
	data any // immutable snapshot, shared across subscribers
}

// broadcaster fans a job's event frames out to any number of stream
// subscribers and keeps a bounded replay ring of everything published,
// so late subscribers receive the event prefix they missed instead of
// joining lossily mid-stream. Publishing never blocks on a slow
// subscriber. For jobs restored from the durable store, the ring is
// seeded from the journaled history before the broadcaster closes.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	// replay ring: history holds up to limit frames, oldest at start
	// (wrapping once full); evicted counts frames pushed out of the
	// window.
	limit   int
	history []event
	start   int
	evicted uint64
}

func newBroadcaster(replayLimit int) *broadcaster {
	if replayLimit < 1 {
		replayLimit = defaultReplayBuffer
	}
	return &broadcaster{subs: make(map[*subscriber]struct{}), limit: replayLimit}
}

// record pushes ev into the replay ring. Caller holds b.mu.
func (b *broadcaster) record(ev event) {
	if len(b.history) < b.limit {
		b.history = append(b.history, ev)
		return
	}
	b.history[b.start] = ev
	b.start = (b.start + 1) % b.limit
	b.evicted++
}

// replay snapshots the ring in publish order, preceded by a dropped
// marker when the window no longer reaches the stream's start. Caller
// holds b.mu.
func (b *broadcaster) replay() []event {
	out := make([]event, 0, len(b.history)+1)
	if b.evicted > 0 {
		out = append(out, event{kind: EventDropped, data: DroppedEvent{Count: b.evicted}})
	}
	out = append(out, b.history[b.start:]...)
	return append(out, b.history[:b.start]...)
}

// seed pre-populates the replay ring with a restored job's journaled
// event history; evicted is the count of events the caller already
// knows were trimmed before these.
func (b *broadcaster) seed(evs []event, evicted uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.evicted += evicted
	for _, ev := range evs {
		b.record(ev)
	}
}

// subscribe registers a new subscriber and returns the replay prefix
// it missed plus its live channel. On an already-closed broadcaster
// (terminal job) the channel comes back closed, so the consumer writes
// the replay and its drain loop ends immediately. The snapshot and the
// registration are atomic: no frame is ever in both, and none falls
// between them.
func (b *broadcaster) subscribe() ([]event, *subscriber) {
	sub := &subscriber{ch: make(chan event, subscriberBuffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.replay()
	if b.closed {
		close(sub.ch)
		return replay, sub
	}
	b.subs[sub] = struct{}{}
	return replay, sub
}

// unsubscribe removes sub; safe after close.
func (b *broadcaster) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, sub)
}

// subscriberCount reports the open stream count (for /metrics).
func (b *broadcaster) subscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// publish queues one frame to every subscriber and the replay ring. A
// subscriber whose buffer is full misses the frame, but the miss is
// owed to it: the next time its buffer has room it first receives an
// EventDropped marker carrying how many frames it lost.
func (b *broadcaster) publish(kind string, data any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	ev := event{kind: kind, data: data}
	// State frames stay out of the replay ring: every stream already
	// opens with a fresh status snapshot and closes with the final
	// one, so replaying stale snapshots would only make a late
	// subscriber's view of progress regress.
	if kind != EventState {
		b.record(ev)
	}
	for sub := range b.subs {
		if sub.dropped > 0 {
			select {
			case sub.ch <- event{kind: EventDropped, data: DroppedEvent{Count: sub.dropped}}:
				sub.dropped = 0
			default:
				sub.dropped++
				continue
			}
		}
		select {
		case sub.ch <- ev:
		default: // slow subscriber: drop rather than stall the job
			sub.dropped++
		}
	}
}

// close ends every subscriber's stream. The replay ring survives, so
// late subscribers still get the job's history. Publishing after close
// is a no-op.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		close(sub.ch)
	}
	b.subs = nil
}

// writeFrame writes one event frame in SSE framing ("event:"/"data:"
// lines and a blank-line terminator) or, when ndjson is set, as one
// {"event":...,"data":...} line.
func writeFrame(w io.Writer, ndjson bool, kind string, data any) error {
	blob, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if ndjson {
		_, err = fmt.Fprintf(w, "{\"event\":%q,\"data\":%s}\n", kind, blob)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, blob)
	return err
}
