package serve

import (
	"darco/export"
	"darco/internal/stream"
	"darco/telemetry"
)

// Event kinds on a job's live stream. The fan-out machinery itself —
// broadcaster, replay ring, loss markers, SSE/NDJSON framing — lives
// in darco/internal/stream and is shared with the sched coordinator,
// which re-multiplexes these same frame shapes for federated jobs.
const (
	// EventState carries a JobStatus snapshot; emitted on every state
	// transition, as the first frame of every stream, and as the final
	// frame before the stream ends. State events are idempotent
	// snapshots — consumers may see the same state more than once.
	EventState = "state"
	// EventScenario carries a ScenarioEvent as each scenario finishes.
	EventScenario = "scenario"
	// EventTelemetry carries a TelemetryEvent per completed
	// instruction-mix window of an in-flight scenario.
	EventTelemetry = "telemetry"
	// EventDropped carries a DroppedEvent wherever the stream lost
	// frames: a subscriber that could not drain fast enough, or a
	// replay window that no longer reaches back to the job's start.
	// Consumers see exactly where the gap is and how big it was,
	// instead of a silent skip.
	EventDropped = stream.KindDropped
)

// ScenarioEvent is the payload of one scenario-completion frame: the
// same deterministic export row the CSV/NDJSON exporters write, plus
// the scenario's index in campaign order. Rows arrive in completion
// order; reorder on Index if scenario order matters.
type ScenarioEvent struct {
	Job   string     `json:"job"`
	Index int        `json:"scenario_index"`
	Row   export.Row `json:"row"`
}

// TelemetryEvent is the payload of one instruction-mix window frame.
type TelemetryEvent struct {
	Job      string           `json:"job"`
	Index    int              `json:"scenario_index"`
	Scenario string           `json:"scenario"`
	Window   telemetry.Window `json:"window"`
}

// DroppedEvent is the payload of a dropped marker: how many frames are
// missing at this point of the stream.
type DroppedEvent = stream.DroppedEvent
