package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/testutil"
	"darco/internal/workload"
	"darco/serve"
	"darco/telemetry"
)

// newTestServer spins up a daemon behind httptest and shuts it down
// with the test.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// submit POSTs a job and decodes the response; fatal unless the status
// code matches want.
func submit(t *testing.T, base, body string, want int) serve.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("submit: status %d, want %d: %s", resp.StatusCode, want, raw)
	}
	var st serve.JobStatus
	if want == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response: %v: %s", err, raw)
		}
		if st.ID == "" || st.State != serve.JobQueued {
			t.Fatalf("submit response: %+v", st)
		}
	}
	return st
}

func getStatus(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls a job until pred holds, failing after a generous
// deadline.
func waitState(t *testing.T, base, id string, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state (last: %+v)", id, getStatus(t, base, id))
	return serve.JobStatus{}
}

func fetch(t *testing.T, url string, wantCode int, wantType string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); wantType != "" && !strings.HasPrefix(ct, wantType) {
		t.Errorf("GET %s: content-type %q, want prefix %q", url, ct, wantType)
	}
	return body
}

// frame is one decoded stream frame, from either framing.
type frame struct {
	kind string
	data json.RawMessage
}

// readStream consumes a job's event stream (SSE or NDJSON framing)
// until it ends, returning every frame.
func readStream(t *testing.T, url string, ndjson bool) []frame {
	t.Helper()
	if ndjson {
		url += "?format=ndjson"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wantType := "text/event-stream"
	if ndjson {
		wantType = "application/x-ndjson"
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
		t.Errorf("events content-type %q, want %q", ct, wantType)
	}
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if ndjson {
		for sc.Scan() {
			var env struct {
				Event string          `json:"event"`
				Data  json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
				t.Fatalf("bad ndjson frame %q: %v", sc.Text(), err)
			}
			frames = append(frames, frame{kind: env.Event, data: env.Data})
		}
	} else {
		var kind string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				frames = append(frames, frame{kind: kind, data: json.RawMessage(strings.TrimPrefix(line, "data: "))})
			case line == "":
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// offlineExport runs the same scenarios through the library directly
// and renders them with the deterministic export defaults — the bytes
// the daemon's export endpoints must reproduce exactly.
func offlineExport(t *testing.T, scenarios []darco.Scenario) (jsonB, csvB, ndjsonB []byte) {
	t.Helper()
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	var j, c, n bytes.Buffer
	if err := export.WriteJSON(&j, rep); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteCSV(&c, rep); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteNDJSON(&n, rep); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes(), n.Bytes()
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return p
}

// TestEndToEndSubmitPollExport is the core lifecycle test: submit →
// poll status → fetch results in every format, byte-identical to an
// offline export of the same scenarios.
func TestEndToEndSubmitPollExport(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	body := `{"name":"e2e","scenarios":[
		{"profile":"429.mcf","scale":0.05},
		{"profile":"470.lbm","scale":0.05}]}`
	st := submit(t, ts.URL, body, http.StatusAccepted)
	if st.Scenarios != 2 || st.Name != "e2e" {
		t.Fatalf("submitted status: %+v", st)
	}

	// Results are 409 until the job lands.
	if st := getStatus(t, ts.URL, st.ID); !st.State.Terminal() {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/export.json")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict && !getStatus(t, ts.URL, st.ID).State.Terminal() {
			t.Errorf("export before completion: status %d, want 409", resp.StatusCode)
		}
	}

	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.JobDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Completed != 2 || final.Failed != 0 {
		t.Errorf("final counters: %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("missing timestamps: %+v", final)
	}

	scenarios := []darco.Scenario{
		{Profile: mustProfile(t, "429.mcf"), Scale: 0.05},
		{Profile: mustProfile(t, "470.lbm"), Scale: 0.05},
	}
	wantJSON, wantCSV, wantNDJSON := offlineExport(t, scenarios)
	base := ts.URL + "/api/v1/jobs/" + st.ID
	testutil.RequireSameBytes(t, "export.json vs offline export", fetch(t, base+"/export.json", 200, "application/json"), wantJSON)
	testutil.RequireSameBytes(t, "export.csv vs offline export", fetch(t, base+"/export.csv", 200, "text/csv"), wantCSV)
	testutil.RequireSameBytes(t, "export.ndjson vs offline export", fetch(t, base+"/export.ndjson", 200, "application/x-ndjson"), wantNDJSON)
	html := fetch(t, base+"/export.html", 200, "text/html")
	if !bytes.Contains(html, []byte("<svg")) || !bytes.Contains(html, []byte("429.mcf")) {
		t.Error("export.html is not the dashboard")
	}
	if wall := fetch(t, base+"/export.json?wall=1", 200, "application/json"); !bytes.Contains(wall, []byte("wall_ms")) {
		t.Error("?wall=1 did not add wall-clock metrics")
	}

	// The job shows up in the listing and the roster/health endpoints
	// respond.
	var list []serve.JobStatus
	if err := json.Unmarshal(fetch(t, ts.URL+"/api/v1/jobs", 200, "application/json"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("job listing: %+v", list)
	}
	var profiles []serve.ProfileInfo
	if err := json.Unmarshal(fetch(t, ts.URL+"/api/v1/profiles", 200, "application/json"), &profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(workload.Suites()) {
		t.Errorf("%d profiles listed, want %d", len(profiles), len(workload.Suites()))
	}
	var h serve.Health
	if err := json.Unmarshal(fetch(t, ts.URL+"/healthz", 200, "application/json"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 1 {
		t.Errorf("health: %+v", h)
	}
}

// TestConcurrentClientsStreamAndFetch is the acceptance scenario: two
// clients drive the daemon at once, each streaming live telemetry
// while its job runs (one over SSE, one over NDJSON), then fetching
// results byte-identical to offline exports. Run under -race.
//
// The exact frame-count assertions are safe against the stream's
// lossy-drop policy: each job emits ~60 windows + 2 scenario rows +
// a few state frames at this scale/interval, well under the 256-frame
// subscriber buffer, so nothing can be dropped even if a client lags.
func TestConcurrentClientsStreamAndFetch(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	type client struct {
		name      string
		ndjson    bool
		profiles  []string
		scenarios []darco.Scenario
	}
	clients := []client{
		{name: "sse-client", ndjson: false, profiles: []string{"429.mcf", "458.sjeng"}},
		{name: "ndjson-client", ndjson: true, profiles: []string{"470.lbm", "433.milc"}},
	}
	for i := range clients {
		for _, p := range clients[i].profiles {
			clients[i].scenarios = append(clients[i].scenarios,
				darco.Scenario{Profile: mustProfile(t, p), Scale: 0.5})
		}
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c client) {
			defer wg.Done()
			var specs []string
			for _, p := range c.profiles {
				specs = append(specs, fmt.Sprintf(`{"profile":%q,"scale":0.5}`, p))
			}
			body := fmt.Sprintf(`{"name":%q,"scenarios":[%s],"telemetry":{"interval_insns":50000}}`,
				c.name, strings.Join(specs, ","))
			st := submit(t, ts.URL, body, http.StatusAccepted)

			// Stream live events until the job ends.
			frames := readStream(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events", c.ndjson)
			var telemetryFrames, scenarioFrames int
			var finalState serve.JobStatus
			for _, f := range frames {
				switch f.kind {
				case serve.EventTelemetry:
					var ev serve.TelemetryEvent
					if err := json.Unmarshal(f.data, &ev); err != nil {
						t.Errorf("%s: bad telemetry frame: %v", c.name, err)
					}
					if ev.Job != st.ID {
						t.Errorf("%s: telemetry for wrong job %s", c.name, ev.Job)
					}
					telemetryFrames++
				case serve.EventScenario:
					var ev serve.ScenarioEvent
					if err := json.Unmarshal(f.data, &ev); err != nil {
						t.Errorf("%s: bad scenario frame: %v", c.name, err)
					}
					scenarioFrames++
				case serve.EventState:
					if err := json.Unmarshal(f.data, &finalState); err != nil {
						t.Errorf("%s: bad state frame: %v", c.name, err)
					}
				}
			}
			if finalState.State != serve.JobDone {
				t.Errorf("%s: stream ended in state %s (%s)", c.name, finalState.State, finalState.Error)
				return
			}
			if telemetryFrames == 0 {
				t.Errorf("%s: no telemetry frames on the live stream", c.name)
			}
			if scenarioFrames != len(c.scenarios) {
				t.Errorf("%s: %d scenario frames, want %d", c.name, scenarioFrames, len(c.scenarios))
			}

			wantJSON, wantCSV, _ := offlineExport(t, c.scenarios)
			base := ts.URL + "/api/v1/jobs/" + st.ID
			testutil.RequireSameBytes(t, c.name+": export.json vs offline export", fetch(t, base+"/export.json", 200, ""), wantJSON)
			testutil.RequireSameBytes(t, c.name+": export.csv vs offline export", fetch(t, base+"/export.csv", 200, ""), wantCSV)
		}(c)
	}
	wg.Wait()
}

// TestSSETelemetryWindows checks the telemetry stream's content: the
// windows of a single-scenario job must be contiguous, cut at the
// requested interval, and internally consistent.
func TestSSETelemetryWindows(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{MaxParallelism: 1})
	const interval = 50_000
	// The stream is live (no replay for frames published before the
	// subscription), so the job must outlive the subscribe round trip
	// comfortably: two scale-1.0 scenarios run for hundreds of ms.
	body := fmt.Sprintf(`{"scenarios":[
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1}],
		"telemetry":{"interval_insns":%d}}`, interval)
	st := submit(t, ts.URL, body, http.StatusAccepted)
	frames := readStream(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events", false)

	wins := make(map[int][]telemetry.Window)
	for _, f := range frames {
		if f.kind != serve.EventTelemetry {
			continue
		}
		var ev serve.TelemetryEvent
		if err := json.Unmarshal(f.data, &ev); err != nil {
			t.Fatal(err)
		}
		if (ev.Index != 0 && ev.Index != 1) || ev.Scenario != "429.mcf" {
			t.Errorf("telemetry tagged %d/%q, want 0|1/429.mcf", ev.Index, ev.Scenario)
		}
		wins[ev.Index] = append(wins[ev.Index], ev.Window)
	}
	var total int
	for _, ws := range wins {
		total += len(ws)
	}
	if total < 2 {
		t.Fatalf("only %d telemetry windows for a %d-insn interval", total, interval)
	}
	for idx, ws := range wins {
		for i, w := range ws {
			// Frames published before the subscription are legitimately
			// unseen. After that the stream is provably lossless even on
			// a stalled consumer: two scale-1.0 scenarios at this
			// interval emit ~120 frames total, under the 256-frame
			// subscriber buffer, so the lossy-drop path cannot trigger.
			if i > 0 && w.Index != ws[i-1].Index+1 {
				t.Fatalf("scenario %d: window index jumped %d -> %d on a drained stream",
					idx, ws[i-1].Index, w.Index)
			}
			if i < len(ws)-1 && w.Insns != interval {
				t.Errorf("scenario %d window %d covers %d insns, want %d", idx, i, w.Insns, interval)
			}
			if sum := w.Simple + w.Complex + w.Memory + w.Branch + w.Vector; sum != w.Insns {
				t.Errorf("scenario %d window %d class sum %d != insns %d", idx, i, sum, w.Insns)
			}
		}
	}
}

// TestQueueBackpressure pins the 429 contract: Workers:1 and
// QueueCapacity:1 admit one running and one queued job; the third
// submission is rejected.
func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueCapacity: 1, MaxParallelism: 1})
	long := `{"scenarios":[
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1}]}`

	first := submit(t, ts.URL, long, http.StatusAccepted)
	// Wait until the worker has popped it: the queue slot is free.
	waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool { return s.State == serve.JobRunning })
	second := submit(t, ts.URL, long, http.StatusAccepted)
	if st := getStatus(t, ts.URL, second.ID); st.State != serve.JobQueued {
		t.Fatalf("second job is %s, want queued", st.State)
	}

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(raw), "queue is full") {
		t.Errorf("429 body: %s", raw)
	}

	// Unblock the teardown promptly.
	for _, id := range []string{first.ID, second.ID} {
		fetchCancel(t, ts.URL, id)
	}
	for _, id := range []string{first.ID, second.ID} {
		waitState(t, ts.URL, id, func(s serve.JobStatus) bool { return s.State.Terminal() })
	}
}

func fetchCancel(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCancelRunningJob is the acceptance cancel path: a cancel request
// stops an in-flight campaign promptly and the partial report stays
// fetchable.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{MaxParallelism: 1})
	long := `{"scenarios":[
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1}]}`
	st := submit(t, ts.URL, long, http.StatusAccepted)
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State == serve.JobRunning })

	start := time.Now()
	fetchCancel(t, ts.URL, st.ID)
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.JobCancelled {
		t.Fatalf("cancelled job ended %s (%s)", final.State, final.Error)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("cancellation took %s", el)
	}
	if !strings.Contains(final.Error, "context canceled") {
		t.Errorf("cancelled job error %q does not surface context.Canceled", final.Error)
	}
	// The partial report is retained: rows for never-started scenarios
	// carry their cancellation error.
	got := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export.csv", 200, "text/csv")
	if !bytes.Contains(got, []byte("context canceled")) {
		t.Errorf("partial export misses cancelled rows:\n%s", got)
	}
	// Cancel is idempotent on a terminal job.
	if again := fetchCancel(t, ts.URL, st.ID); again.State != serve.JobCancelled {
		t.Errorf("re-cancel changed state to %s", again.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{MaxScenarios: 3})
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{`, "invalid request body"},
		{"trailing garbage", `{"scenarios":[{"profile":"429.mcf"}]}x`, "trailing data"},
		{"unknown field", `{"scenario":[{"profile":"429.mcf"}]}`, "unknown field"},
		{"no scenarios", `{}`, "no scenarios"},
		{"unknown profile", `{"scenarios":[{"profile":"999.nope"}]}`, `unknown profile`},
		{"negative scale", `{"scenarios":[{"profile":"429.mcf","scale":-1}]}`, "negative"},
		{"negative parallelism", `{"parallelism":-2,"scenarios":[{"profile":"429.mcf"}]}`, "negative"},
		{"too many scenarios", `{"suite":{"scale":0.05}}`, "exceed the server limit"},
		{"bad engine", `{"scenarios":[{"profile":"429.mcf"}],"engine":{"power":true,"freq_mhz":-5}}`,
			"engine configuration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
			}
			if !strings.Contains(string(raw), c.wantErr) {
				t.Errorf("error %s does not mention %q", raw, c.wantErr)
			}
		})
	}
	// Oversized bodies are shed before parsing: 413, not an OOM.
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"name":"`+strings.Repeat("x", 2<<20)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	if code := func() int {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/job-999")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}(); code != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", code)
	}
}

// TestEngineSpecApplied checks that engine options survive the JSON
// round trip: a timing-enabled job exports non-zero cycles.
func TestEngineSpecApplied(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	body := `{"scenarios":[{"profile":"429.mcf","scale":0.05}],
		"engine":{"timing":true,"bb_threshold":5}}`
	st := submit(t, ts.URL, body, http.StatusAccepted)
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	var rows []export.Row
	for _, line := range bytes.Split(fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export.ndjson", 200, ""), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var row export.Row
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 1 || rows[0].Cycles == 0 {
		t.Errorf("timing-enabled job exported no cycles: %+v", rows)
	}
}

// TestEventsAfterCompletion: a late subscriber to a terminal job gets
// the snapshot, the replayed event history (the scenario row it
// missed), and the final state — then the stream ends instead of
// hanging.
func TestEventsAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	st := submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`, http.StatusAccepted)
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })

	done := make(chan []frame, 1)
	go func() { done <- readStream(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events", true) }()
	select {
	case frames := <-done:
		if len(frames) == 0 {
			t.Fatal("no frames for a completed job")
		}
		var scenarioFrames int
		for _, f := range frames {
			if f.kind == serve.EventScenario {
				var ev serve.ScenarioEvent
				if err := json.Unmarshal(f.data, &ev); err != nil {
					t.Fatalf("bad replayed scenario frame: %v", err)
				}
				if ev.Index != 0 || ev.Row.Scenario != "429.mcf" {
					t.Errorf("replayed scenario frame: %+v", ev)
				}
				scenarioFrames++
			}
		}
		if scenarioFrames != 1 {
			t.Errorf("replay delivered %d scenario frames, want 1", scenarioFrames)
		}
		var last serve.JobStatus
		if err := json.Unmarshal(frames[len(frames)-1].data, &last); err != nil {
			t.Fatal(err)
		}
		if last.State != serve.JobDone {
			t.Errorf("final frame state %s", last.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream for a completed job did not end")
	}
}

// TestShutdownCancelsJobs pins the shutdown contract: in-flight jobs
// are cancelled, queued jobs never start, and new submissions get 503.
func TestShutdownCancelsJobs(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1, QueueCapacity: 2, MaxParallelism: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	long := `{"scenarios":[
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1}]}`
	running := submit(t, ts.URL, long, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(st serve.JobStatus) bool { return st.State == serve.JobRunning })
	queued := submit(t, ts.URL, long, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := getStatus(t, ts.URL, running.ID); st.State != serve.JobCancelled {
		t.Errorf("running job ended %s after shutdown", st.State)
	}
	if st := getStatus(t, ts.URL, queued.ID); st.State != serve.JobCancelled {
		t.Errorf("queued job ended %s after shutdown", st.State)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d, want 503", resp.StatusCode)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown not idempotent: %v", err)
	}
}
