package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	darco "darco"
	"darco/serve"
)

// TestListStateFilter pins the ?state= grammar on the job listing:
// single states, comma-separated unions, and a 400 on unknown values.
func TestListStateFilter(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueCapacity: 4})

	fast := submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.1}]}`, http.StatusAccepted)
	waitState(t, ts.URL, fast.ID, func(s serve.JobStatus) bool { return s.State == serve.JobDone })
	failing := submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.1}],"engine":{"max_guest_insns":5000}}`, http.StatusAccepted)
	waitState(t, ts.URL, failing.ID, func(s serve.JobStatus) bool { return s.State == serve.JobFailed })

	list := func(q string) []serve.JobStatus {
		var jobs []serve.JobStatus
		if err := json.Unmarshal(fetch(t, ts.URL+"/api/v1/jobs"+q, http.StatusOK, "application/json"), &jobs); err != nil {
			t.Fatalf("list %q: %v", q, err)
		}
		return jobs
	}

	if jobs := list(""); len(jobs) != 2 {
		t.Errorf("unfiltered listing: %d jobs, want 2", len(jobs))
	}
	if jobs := list("?state=done"); len(jobs) != 1 || jobs[0].ID != fast.ID {
		t.Errorf("?state=done: %+v", jobs)
	}
	if jobs := list("?state=failed"); len(jobs) != 1 || jobs[0].ID != failing.ID {
		t.Errorf("?state=failed: %+v", jobs)
	}
	if jobs := list("?state=done,failed"); len(jobs) != 2 {
		t.Errorf("?state=done,failed: %+v", jobs)
	}
	if jobs := list("?state=running"); len(jobs) != 0 {
		t.Errorf("?state=running: %+v", jobs)
	}
	// degraded is coordinator-only but part of the shared grammar, so
	// a worker accepts it (and matches nothing).
	if jobs := list("?state=degraded"); len(jobs) != 0 {
		t.Errorf("?state=degraded: %+v", jobs)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?state=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthIdentity pins the daemon identity fields every fleet
// coordinator keys on: version and a non-empty worker id.
func TestHealthIdentity(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, WorkerID: "w-test-7"})
	var h serve.Health
	if err := json.Unmarshal(fetch(t, ts.URL+"/healthz", http.StatusOK, "application/json"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != darco.Version || h.WorkerID != "w-test-7" {
		t.Errorf("healthz identity: %+v", h)
	}

	// Default identity is synthesized from host+pid — never empty.
	_, ts2 := newTestServer(t, serve.Options{Workers: 1})
	if err := json.Unmarshal(fetch(t, ts2.URL+"/healthz", http.StatusOK, "application/json"), &h); err != nil {
		t.Fatal(err)
	}
	if h.WorkerID == "" {
		t.Error("default worker_id is empty")
	}
}
