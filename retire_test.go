package darco_test

import (
	"context"
	"testing"

	darco "darco"
	"darco/internal/timing"
	"darco/internal/workload"
)

// streamTally accumulates everything a retire subscription delivered.
type streamTally struct {
	events      uint64
	batches     int
	maxBatch    int
	nextSeq     uint64
	seqGap      bool
	syncs       map[darco.SyncKind]int
	loads       uint64
	stores      uint64
	classCounts map[darco.RetireClass]uint64
	digest      uint64
}

func newStreamTally() *streamTally {
	return &streamTally{syncs: make(map[darco.SyncKind]int), classCounts: make(map[darco.RetireClass]uint64)}
}

func (t *streamTally) sink(b darco.RetireBatch) {
	if b.Seq != t.nextSeq {
		t.seqGap = true
	}
	t.nextSeq = b.Seq + 1
	t.batches++
	if b.Sync != nil {
		t.syncs[b.Sync.Kind]++
		t.digest = t.digest*1099511628211 + uint64(b.Sync.Kind) + b.Sync.GuestInsns
		return
	}
	t.events += uint64(len(b.Events))
	if len(b.Events) > t.maxBatch {
		t.maxBatch = len(b.Events)
	}
	for i := range b.Events {
		ev := &b.Events[i]
		if ev.Load {
			t.loads++
		}
		if ev.Store {
			t.stores++
		}
		t.classCounts[ev.Class]++
		t.digest = t.digest*1099511628211 + uint64(ev.PC)<<32 + uint64(ev.Addr) + uint64(ev.GuestPC)
	}
}

func TestRetireStreamAccountsEveryAppInstruction(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	tally := newStreamTally()
	ses.SubscribeRetires(tally.sink, darco.WithRetireBatchSize(1000))
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tally.events != res.HostAppInsns {
		t.Errorf("streamed %d events, session retired %d app host insns", tally.events, res.HostAppInsns)
	}
	if tally.seqGap {
		t.Error("batch sequence numbers not contiguous")
	}
	if tally.maxBatch > 1000 {
		t.Errorf("batch of %d events exceeds requested size 1000", tally.maxBatch)
	}
	if got, want := tally.syncs[darco.SyncSyscall], int(res.SyscallSyncs); got != want {
		t.Errorf("syscall markers %d, syncs %d", got, want)
	}
	if got, want := tally.syncs[darco.SyncValidation], int(res.Validations); got != want {
		t.Errorf("validation markers %d, validations %d", got, want)
	}
	if got, want := tally.syncs[darco.SyncPageTransfer], int(res.PageTransfers); got != want {
		t.Errorf("page markers %d, transfers %d", got, want)
	}
	if got := tally.syncs[darco.SyncFinal]; got != 1 {
		t.Errorf("final markers %d", got)
	}
	if tally.loads == 0 || tally.stores == 0 {
		t.Errorf("no memory traffic in stream: %d loads, %d stores", tally.loads, tally.stores)
	}
	if tally.classCounts[darco.RetireBranch] == 0 || tally.classCounts[darco.RetireSimple] == 0 {
		t.Errorf("class mix empty: %v", tally.classCounts)
	}
}

func TestRetireStreamDeterministicAcrossRuns(t *testing.T) {
	p, _ := workload.ByName("458.sjeng")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	digest := func() uint64 {
		eng, err := darco.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		ses, err := eng.NewSession(im)
		if err != nil {
			t.Fatal(err)
		}
		tally := newStreamTally()
		ses.SubscribeRetires(tally.sink)
		if _, err := ses.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return tally.digest
	}
	if a, b := digest(), digest(); a != b {
		t.Errorf("retire streams differ across identical runs: %#x vs %#x", a, b)
	}
}

func TestRetireStreamDoesNotPerturbTiming(t *testing.T) {
	p, _ := workload.ByName("470.lbm")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	run := func(subscribe bool) *darco.Result {
		eng, err := darco.NewEngine(darco.WithTiming(timing.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		ses, err := eng.NewSession(im)
		if err != nil {
			t.Fatal(err)
		}
		if subscribe {
			ses.SubscribeRetires(func(darco.RetireBatch) {})
		}
		res, err := ses.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, subscribed := run(false), run(true)
	if plain.Timing.Cycles != subscribed.Timing.Cycles {
		t.Errorf("subscription changed timing: %d vs %d cycles", plain.Timing.Cycles, subscribed.Timing.Cycles)
	}
	if plain.Stats != subscribed.Stats {
		t.Errorf("subscription changed functional stats")
	}
}

func TestRetireStreamSubscribeAndUnsubscribeMidSession(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1: no subscriber.
	first, err := ses.Step(ctx, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if ses.Done() {
		t.Skip("workload too short for an incremental step")
	}

	// Phase 2: subscribed for one step.
	tally := newStreamTally()
	cancel := ses.SubscribeRetires(tally.sink)
	second, err := ses.Step(ctx, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	phase2 := tally.events

	// Phase 3: unsubscribed to completion.
	cancel()
	cancel() // idempotent
	final, err := ses.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := second.HostAppInsns - first.HostAppInsns; phase2 != want {
		t.Errorf("subscribed step streamed %d events, retired %d app insns", phase2, want)
	}
	if tally.events != phase2 {
		t.Errorf("events delivered after unsubscribe: %d -> %d", phase2, tally.events)
	}
	if final.HostAppInsns <= second.HostAppInsns {
		t.Error("no progress after unsubscribe")
	}
}

func TestUnsubscribeFromInsideSink(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	// Three subscribers; the first stops itself after two deliveries
	// from inside its own callback. The others must keep seeing every
	// delivery exactly once.
	var aBatches int
	var cancelA func()
	cancelA = ses.SubscribeRetires(func(b darco.RetireBatch) {
		aBatches++
		if aBatches == 2 {
			cancelA()
		}
	})
	tallyB := newStreamTally()
	tallyC := newStreamTally()
	ses.SubscribeRetires(tallyB.sink)
	ses.SubscribeRetires(tallyC.sink)
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if aBatches != 2 {
		t.Errorf("self-cancelled sink heard %d batches after unsubscribing at 2", aBatches)
	}
	if tallyB.seqGap || tallyC.seqGap {
		t.Error("surviving subscribers skipped or repeated a delivery")
	}
	if tallyB.events != res.HostAppInsns || tallyC.events != res.HostAppInsns {
		t.Errorf("survivors saw %d/%d events, session retired %d",
			tallyB.events, tallyC.events, res.HostAppInsns)
	}
}

func TestWithRetireStreamEngineOption(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	tally := newStreamTally()
	eng, err := darco.NewEngine(darco.WithRetireStream(tally.sink, darco.WithRetireBatchSize(512)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if tally.events != res.HostAppInsns {
		t.Errorf("engine-level sink saw %d events, session retired %d", tally.events, res.HostAppInsns)
	}
	if tally.maxBatch > 512 {
		t.Errorf("batch of %d exceeds requested 512", tally.maxBatch)
	}

	// Campaigns must not inherit the engine's sink: parallel scenarios
	// would hammer it concurrently. The sink's counters are only
	// touched if inheritance leaks, which the race detector would also
	// flag.
	before := tally.events
	scenarios := []darco.Scenario{{Name: "a", Profile: p, Scale: 0.05}, {Name: "b", Profile: p, Scale: 0.05}}
	rep, err := eng.RunCampaign(context.Background(), scenarios, darco.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if tally.events != before {
		t.Errorf("campaign scenarios leaked %d events into the engine-level sink", tally.events-before)
	}
}
