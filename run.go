package darco

import (
	"context"
	"fmt"
	"strings"
	"time"

	"darco/internal/guest"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
	"darco/obs"
)

// Config configures one DARCO run. The timing and power simulators are
// optional and do not affect functionality (paper §V).
//
// Config remains the base configuration an Engine is built from; prefer
// assembling it through NewEngine's functional options (WithTOL,
// WithTiming, WithPower, ...) in new code.
type Config struct {
	TOL tol.Config

	// Timing, when non-nil, attaches the in-order timing simulator to
	// the co-designed component's retired host instruction stream.
	Timing *timing.Config

	// Power, when non-nil (and Timing enabled), attaches the
	// event-energy power model at the given core frequency.
	Power   *power.Energies
	FreqMHz float64

	// TimingPipeline, when > 0 (and Timing enabled), decouples the
	// timing simulator from emulation: retired instructions flow to
	// the timing core through bounded, ordered batches drained on a
	// separate goroutine, with synchronization events as barriers. The
	// value is the window depth in batches; 0 keeps the synchronous
	// reference path. Stats are bit-identical at any depth.
	TimingPipeline int

	// ValidateEveryNSyncs compares co-designed vs authoritative state
	// at every Nth synchronization in addition to the end of the
	// application (0 disables periodic validation).
	ValidateEveryNSyncs int

	// MaxGuestInsns aborts runaway programs (0 = unlimited).
	MaxGuestInsns uint64
}

// DefaultConfig is a functional-only run with paper-default TOL
// parameters and per-syscall validation.
//
// New code should not need it: a zero-option NewEngine() builds the
// same stack, and WithTOL/WithTiming/WithPower/WithValidation express
// every refinement. DefaultConfig remains supported as the base value
// for code that assembles a Config to pass through WithConfig.
func DefaultConfig() Config {
	return Config{TOL: tol.DefaultConfig(), ValidateEveryNSyncs: 1}
}

// TimingConfig returns a config with the timing simulator attached.
func TimingConfig() Config {
	c := DefaultConfig()
	tc := timing.DefaultConfig()
	c.Timing = &tc
	return c
}

// FullConfig enables timing and power.
func FullConfig() Config {
	c := TimingConfig()
	e := power.DefaultEnergies()
	c.Power = &e
	c.FreqMHz = 1000
	return c
}

// Result reports everything a run produced.
type Result struct {
	Stats    tol.Stats
	Overhead tol.Overhead

	HostAppInsns uint64 // host instructions emulating the application
	HostInsns    uint64 // including TOL overhead

	Output   []byte // guest program output (write syscalls)
	ExitCode int32

	Wall time.Duration

	// GuestMIPS/HostMIPS are emulation speeds (millions of guest/host
	// instructions per wall second), the paper's Table of §VI-A.
	GuestMIPS float64
	HostMIPS  float64

	Timing *timing.Stats
	Core   *timing.Core // full simulator state for detailed inspection
	Power  *power.Report

	Validations   uint64
	PageTransfers uint64
	SyscallSyncs  uint64

	// Obs is a snapshot of the engine's profiling counters at the time
	// of this result; nil unless WithObsCounters attached them. When the
	// counters instance is shared (the serve daemon attaches one per
	// process), the snapshot is cumulative across everything it covers,
	// not per-session.
	Obs *obs.EngineCountersSnapshot

	// Phases splits the session wall time: Emulate is the time inside
	// the controller's run loop, TimingDrain the time Step spent
	// waiting for the timing pipeline to drain on exit. The serve tier
	// turns these into per-scenario phase spans.
	Phases PhaseTimings
}

// PhaseTimings is a session's wall-time attribution across execution
// phases.
type PhaseTimings struct {
	Emulate     time.Duration `json:"emulate,omitempty"`
	TimingDrain time.Duration `json:"timing_drain,omitempty"`
}

// Run executes the guest image on the full DARCO stack.
//
// Deprecated: Run is a legacy wrapper over the Engine/Session API and
// will be removed once nothing in the repository exercises its legacy
// semantics. It cannot be cancelled, stepped, observed, subscribed to
// or campaigned over. Migrate:
//
//	eng, err := darco.NewEngine(darco.WithConfig(cfg))
//	res, err := eng.Run(ctx, im)
//
// or, for the default stack, darco.NewEngine() with no options. The
// wrapper also preserves two pre-Engine quirks new code must not rely
// on: power without timing is silently dropped, and a zero frequency
// silently means 1000 MHz (NewEngine rejects both).
func Run(im *guest.Image, cfg Config) (*Result, error) {
	// Legacy semantics the stricter NewEngine validation would reject:
	// power without timing was silently ignored, and a zero frequency
	// meant the power model's 1000 MHz default.
	if cfg.Power != nil && cfg.Timing == nil {
		cfg.Power = nil
	}
	if cfg.Power != nil && cfg.FreqMHz <= 0 {
		cfg.FreqMHz = 1000
	}
	eng, err := NewEngine(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.Run(context.Background(), im)
}

// EmulationCostSBM reports host instructions per guest instruction in
// superblock mode (the paper's Fig. 5 metric).
func (r *Result) EmulationCostSBM() float64 {
	if r.Stats.GuestInsnsSBM == 0 {
		return 0
	}
	return float64(r.Stats.HostInsnsSBM) / float64(r.Stats.GuestInsnsSBM)
}

// TOLOverheadFrac reports the TOL share of the host dynamic instruction
// stream (Fig. 6).
func (r *Result) TOLOverheadFrac() float64 {
	total := r.HostAppInsns + r.Overhead.Total()
	if total == 0 {
		return 0
	}
	return float64(r.Overhead.Total()) / float64(total)
}

// ModeShares reports the dynamic guest instruction split across IM, BBM
// and SBM (Fig. 4).
func (r *Result) ModeShares() (im, bbm, sbm float64) {
	total := float64(r.Stats.GuestInsns())
	if total == 0 {
		return
	}
	return float64(r.Stats.GuestInsnsIM) / total,
		float64(r.Stats.GuestInsnsBBM) / total,
		float64(r.Stats.GuestInsnsSBM) / total
}

// Summary renders a human-readable run report.
func (r *Result) Summary() string {
	var b strings.Builder
	im, bbm, sbm := r.ModeShares()
	fmt.Fprintf(&b, "guest insns   %d (IM %.1f%%, BBM %.1f%%, SBM %.1f%%)\n",
		r.Stats.GuestInsns(), 100*im, 100*bbm, 100*sbm)
	fmt.Fprintf(&b, "host insns    %d app + %d TOL (overhead %.1f%%)\n",
		r.HostAppInsns, r.Overhead.Total(), 100*r.TOLOverheadFrac())
	fmt.Fprintf(&b, "emulation     %.2f host/guest in SBM\n", r.EmulationCostSBM())
	fmt.Fprintf(&b, "translations  %d BB, %d SB (%d unrolled, %d/%d rebuilds)\n",
		r.Stats.BBTranslations, r.Stats.SBTranslations, r.Stats.UnrolledLoops,
		r.Stats.AssertRebuilds, r.Stats.SpecRebuilds)
	fmt.Fprintf(&b, "speed         %.2f guest MIPS, %.2f host MIPS\n", r.GuestMIPS, r.HostMIPS)
	if r.Timing != nil {
		fmt.Fprintf(&b, "timing        %d cycles, IPC %.3f, bpred %.2f%%, L1D miss %.2f%%\n",
			r.Timing.Cycles, r.Timing.IPC(), 100*r.Core.BP.Accuracy(), 100*r.Core.L1D.MissRate())
	}
	if r.Power != nil {
		fmt.Fprintf(&b, "power         %s\n", r.Power)
	}
	return b.String()
}
