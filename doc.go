// Package darco is a from-scratch Go reproduction of DARCO, the
// simulation infrastructure for HW/SW co-designed processors presented
// in "HW/SW Co-designed Processors: Challenges, Design Choices and a
// Simulation Infrastructure for Evaluation" (Kumar et al., ISPASS 2017).
//
// A HW/SW co-designed processor couples a simple host core to a software
// layer — the Translation Optimization Layer (TOL) — that dynamically
// translates and optimizes guest binaries for the host ISA. This package
// is the public facade over the simulated system, designed around three
// layers:
//
//   - Engine: immutable configuration built from functional options
//     (WithTOL, WithTiming, WithPower, WithObserver, WithRetireStream,
//     ...).
//   - Session: one guest program executing on an engine — run it to
//     completion with Run(ctx), advance it incrementally with Step,
//     snapshot it at any time, cancel it through the context, stream
//     translation/synchronization/progress events to an Observer, and
//     subscribe to the retired host instruction stream with
//     SubscribeRetires.
//   - Campaign: a set of named scenarios (workload profile × config
//     variant) executed across a bounded worker pool with per-scenario
//     timeouts, a fail-fast or collect-errors policy, and streaming
//     per-scenario completion (WithScenarioDone), aggregated into a
//     CampaignReport. Scenario execution is deterministic: per-scenario
//     statistics are identical at any parallelism.
//
// Run one workload:
//
//	p, _ := workload.ByName("429.mcf")
//	im, _ := p.Generate()
//	eng, _ := darco.NewEngine(
//		darco.WithTiming(timing.DefaultConfig()),
//		darco.WithPower(power.DefaultEnergies(), 1000),
//	)
//	res, _ := eng.Run(ctx, im)
//	fmt.Println(res.Summary())
//
// Regenerate the paper's whole evaluation concurrently:
//
//	rep, _ := eng.RunCampaign(ctx, darco.SuiteScenarios(1.0),
//		darco.WithParallelism(8), darco.WithFailFast())
//	fmt.Println(rep.Format())
//
// Campaign results export to versioned JSON, CSV and a static HTML
// dashboard through the darco/export package; the compiled Example
// functions in example_test.go are the tested forms of these snippets.
//
// The one-shot darco.Run(im, cfg) facade is deprecated; it remains as a
// thin wrapper over an Engine/Session pair.
//
// README.md covers installation, the command-line tools and the
// package map; ARCHITECTURE.md documents the simulated system, the
// flat index-addressed hot-path design (two-level guest memory, decode
// and basic-block caches, InstallPage invalidation, single-lookup
// profiling) and the results pipeline (retire stream, campaign
// exports, the BENCH_<n>.json performance trajectory), along with the
// determinism contract all of it obeys.
package darco
