// Package darco is a from-scratch Go reproduction of DARCO, the
// simulation infrastructure for HW/SW co-designed processors presented
// in "HW/SW Co-designed Processors: Challenges, Design Choices and a
// Simulation Infrastructure for Evaluation" (Kumar et al., ISPASS 2017).
//
// A HW/SW co-designed processor couples a simple host core to a software
// layer — the Translation Optimization Layer (TOL) — that dynamically
// translates and optimizes guest binaries for the host ISA. DARCO models
// the whole system:
//
//   - a guest CISC ISA with an authoritative functional emulator
//     (internal/guest, internal/guestvm),
//   - a PowerPC-like RISC host ISA and its emulator with the co-design
//     extensions — asserts, speculative memory, checkpoint/commit
//     (internal/host, internal/hostvm),
//   - the TOL with three execution modes (interpretation, basic-block
//     translation, superblock optimization), an SSA optimizer, DDG-based
//     scheduling, linear-scan register allocation, chaining and an IBTC
//     (internal/tol, internal/ir, internal/codecache),
//   - the controller that synchronizes and validates the co-designed
//     state against the authoritative emulator (internal/controller),
//   - a parameterized in-order timing simulator and an event-energy
//     power model (internal/timing, internal/power),
//   - synthetic SPEC CPU2006 / Physicsbench workload generators
//     (internal/workload) and the warm-up simulation methodology of the
//     paper's case study (internal/warmup).
//
// This package is the public facade: build or pick a workload, configure
// the system, and Run it.
//
//	im, _ := workload.MustProfile("429.mcf").Generate()
//	res, err := darco.Run(im, darco.DefaultConfig())
//	fmt.Println(res.Summary())
package darco
