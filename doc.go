// Package darco is a from-scratch Go reproduction of DARCO, the
// simulation infrastructure for HW/SW co-designed processors presented
// in "HW/SW Co-designed Processors: Challenges, Design Choices and a
// Simulation Infrastructure for Evaluation" (Kumar et al., ISPASS 2017).
//
// A HW/SW co-designed processor couples a simple host core to a software
// layer — the Translation Optimization Layer (TOL) — that dynamically
// translates and optimizes guest binaries for the host ISA. DARCO models
// the whole system:
//
//   - a guest CISC ISA with an authoritative functional emulator
//     (internal/guest, internal/guestvm),
//   - a PowerPC-like RISC host ISA and its emulator with the co-design
//     extensions — asserts, speculative memory, checkpoint/commit
//     (internal/host, internal/hostvm),
//   - the TOL with three execution modes (interpretation, basic-block
//     translation, superblock optimization), an SSA optimizer, DDG-based
//     scheduling, linear-scan register allocation, chaining and an IBTC
//     (internal/tol, internal/ir, internal/codecache),
//   - the controller that synchronizes and validates the co-designed
//     state against the authoritative emulator (internal/controller),
//   - a parameterized in-order timing simulator and an event-energy
//     power model (internal/timing, internal/power),
//   - synthetic SPEC CPU2006 / Physicsbench workload generators
//     (internal/workload) and the warm-up simulation methodology of the
//     paper's case study (internal/warmup).
//
// This package is the public facade, designed around three layers:
//
//   - Engine: immutable configuration built from functional options.
//   - Session: one guest program executing on an engine — run it to
//     completion with Run(ctx), advance it incrementally with Step,
//     snapshot it at any time, cancel it through the context, and
//     stream translation/synchronization/progress events to an
//     Observer.
//   - Campaign: a set of named scenarios (workload profile × config
//     variant) executed across a bounded worker pool with per-scenario
//     timeouts and a fail-fast or collect-errors policy, aggregated
//     into a CampaignReport. Scenario execution is deterministic:
//     per-scenario statistics are identical at any parallelism.
//
// Run one workload:
//
//	p, _ := workload.ByName("429.mcf")
//	im, _ := p.Generate()
//	eng, _ := darco.NewEngine(
//		darco.WithTiming(timing.DefaultConfig()),
//		darco.WithPower(power.DefaultEnergies(), 1000),
//	)
//	ses, _ := eng.NewSession(im)
//	res, err := ses.Run(ctx)
//	fmt.Println(res.Summary())
//
// Regenerate the paper's whole evaluation concurrently:
//
//	rep, _ := eng.RunCampaign(ctx, darco.SuiteScenarios(1.0),
//		darco.WithParallelism(8), darco.WithFailFast())
//	fmt.Println(rep.Format())
//
// The one-shot darco.Run(im, cfg) facade is deprecated; it remains as a
// thin wrapper over an Engine/Session pair.
//
// # Hot-path design
//
// The emulation inner loops are built around flat, index-addressed
// state instead of hash lookups — the difference between the paper's
// multi-MIPS functional rates and map-bound ones:
//
//   - Guest memory (guestvm.Memory) is a two-level page table: a group
//     directory of lazily allocated page-pointer slabs, fronted by a
//     one-entry MRU page cache. Loads and stores pay index arithmetic;
//     page-straddling accesses and strict-mode faulting are preserved
//     exactly.
//   - Instruction decode is memoized per code page in flat arrays
//     (guestvm.DecodeCache), shared by both functional emulators. The
//     TOL additionally caches whole decoded basic blocks for its
//     interpreter, and the authoritative emulator does the same for its
//     catch-up runs. TOL.InstallPage invalidates the decode and block
//     caches for the written page (and the straddling predecessor), so
//     re-installed code pages decode fresh.
//   - TOL profiling state (interpretation counts, translation
//     blacklist, rebuild options, execution frequencies) lives in one
//     profile entry behind a single map lookup per dispatch, and
//     overhead accounting accumulates per dispatch before being flushed
//     into the Fig. 7 categories.
//
// None of this changes retired-instruction counts: per-scenario Stats
// are bit-identical to the unoptimized implementation (pinned by
// TestStatsBitIdenticalToSeed).
//
// # Benchmark trajectory
//
// `cmd/darco-bench -json <dir>` measures the Table-Speed and Fig. 4–7
// benches (ns/op, allocs/op, headline metrics) and writes the next
// numbered BENCH_<n>.json snapshot. One snapshot is committed per
// perf-relevant PR; comparing snapshots from the same machine gives the
// repository's performance trajectory. CI runs every benchmark for one
// iteration so the harness cannot silently rot.
package darco
