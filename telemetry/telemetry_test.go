package telemetry_test

import (
	"context"
	"reflect"
	"testing"

	darco "darco"
	"darco/internal/workload"
	"darco/telemetry"
)

// runWindows executes one small workload with a windower subscribed at
// the given interval and retire batch size, returning the emitted
// windows and the run result.
func runWindows(t *testing.T, interval uint64, batch int) ([]telemetry.Window, *darco.Result) {
	t.Helper()
	p, ok := workload.ByName("429.mcf")
	if !ok {
		t.Fatal("429.mcf missing from roster")
	}
	im, err := workload.CachedImage(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	var wins []telemetry.Window
	wd := telemetry.NewWindower(interval, func(w telemetry.Window) { wins = append(wins, w) })
	sess.SubscribeRetires(wd.Sink, darco.WithRetireBatchSize(batch))
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wd.Flush()
	return wins, res
}

func TestWindowsCoverEveryRetiredInstruction(t *testing.T) {
	const interval = 10_000
	wins, res := runWindows(t, interval, 0)
	if len(wins) == 0 {
		t.Fatal("no windows emitted")
	}
	var total, syncs uint64
	for i, w := range wins {
		if w.Index != uint64(i) {
			t.Errorf("window %d has index %d", i, w.Index)
		}
		if w.StartInsn != total {
			t.Errorf("window %d starts at %d, want %d", i, w.StartInsn, total)
		}
		if i < len(wins)-1 && w.Insns != interval {
			t.Errorf("non-final window %d covers %d insns, want %d", i, w.Insns, interval)
		}
		if got := w.Simple + w.Complex + w.Memory + w.Branch + w.Vector; got != w.Insns {
			t.Errorf("window %d class counts sum to %d, Insns %d", i, got, w.Insns)
		}
		if w.Loads+w.Stores > w.Insns || w.Taken > w.Branch {
			t.Errorf("window %d has inconsistent slice counters: %+v", i, w)
		}
		total += w.Insns
		syncs += w.Syncs
	}
	if total != res.HostAppInsns {
		t.Errorf("windows cover %d insns, session retired %d", total, res.HostAppInsns)
	}
	if want := res.SyscallSyncs + res.Validations + res.PageTransfers + 1; syncs != want {
		t.Errorf("windows saw %d sync markers, session reports %d (+1 final)", syncs, want)
	}
}

// TestWindowsIndependentOfBatchSize pins that window boundaries are cut
// on exact instruction counts, not on delivery boundaries: wildly
// different retire batch sizes must yield identical window sequences.
func TestWindowsIndependentOfBatchSize(t *testing.T) {
	a, _ := runWindows(t, 7_919, 64)
	b, _ := runWindows(t, 7_919, 8192)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("window sequences differ across batch sizes:\n%v\n%v", a, b)
	}
}

func TestFlushEmitsTailAndOnlyOnce(t *testing.T) {
	var wins []telemetry.Window
	wd := telemetry.NewWindower(100, func(w telemetry.Window) { wins = append(wins, w) })
	for i := 0; i < 150; i++ {
		wd.Sink(darco.RetireBatch{Events: []darco.RetireEvent{{Class: darco.RetireSimple}}})
	}
	if len(wins) != 1 {
		t.Fatalf("%d windows before flush, want 1", len(wins))
	}
	wd.Flush()
	wd.Flush() // idempotent: nothing pending
	if len(wins) != 2 {
		t.Fatalf("%d windows after flush, want 2", len(wins))
	}
	if wins[1].Insns != 50 || wins[1].StartInsn != 100 || wins[1].Index != 1 {
		t.Errorf("tail window wrong: %+v", wins[1])
	}
	if wd.Insns() != 150 {
		t.Errorf("Insns() = %d, want 150", wd.Insns())
	}
}

func TestSyncOnlyTailWindow(t *testing.T) {
	var wins []telemetry.Window
	wd := telemetry.NewWindower(10, func(w telemetry.Window) { wins = append(wins, w) })
	sync := darco.SyncEvent{Kind: darco.SyncFinal}
	wd.Sink(darco.RetireBatch{Sync: &sync})
	wd.Flush()
	if len(wins) != 1 || wins[0].Syncs != 1 || wins[0].Insns != 0 {
		t.Errorf("sync-only tail not emitted correctly: %v", wins)
	}
}

func TestDefaultInterval(t *testing.T) {
	wd := telemetry.NewWindower(0, nil)
	if wd.Interval() != telemetry.DefaultInterval {
		t.Errorf("interval %d, want default %d", wd.Interval(), telemetry.DefaultInterval)
	}
}

func TestWindowAdd(t *testing.T) {
	a := telemetry.Window{Insns: 5, Simple: 3, Memory: 2, Loads: 1, Syncs: 1}
	b := telemetry.Window{Insns: 7, Simple: 4, Branch: 3, Taken: 2}
	a.Add(&b)
	want := telemetry.Window{Insns: 12, Simple: 7, Memory: 2, Branch: 3, Loads: 1, Taken: 2, Syncs: 1}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}
