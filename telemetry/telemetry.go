// Package telemetry turns a session's retire stream into windowed
// instruction-mix counters for live dashboards.
//
// A Windower is a darco.RetireSink: subscribe its Sink method with
// Session.SubscribeRetires (or attach it per scenario through
// darco.WithScenarioSession) and it aggregates the retired host
// instructions into fixed-size windows — per-class counts, load/store
// and taken-branch totals, and the synchronization markers that fell
// inside the window — emitting each completed window to a callback.
// The serve daemon streams these windows over SSE while campaign jobs
// are in flight; offline consumers can use them to plot instruction-mix
// phase behaviour over a run.
//
// Windows are deterministic: for a fixed workload and interval the
// sequence of emitted windows is identical run to run, because the
// retire stream itself is (sequence numbers, batch boundaries and sync
// interleaving included).
package telemetry

import (
	darco "darco"
)

// DefaultInterval is the window length, in retired host instructions,
// when the consumer does not choose one. One window per ~million host
// instructions keeps live streams low-rate while still resolving
// program phases.
const DefaultInterval = 1 << 20

// Window is one fixed-length interval of a session's retire stream,
// aggregated to instruction-mix counters. Counters classify retired
// host instructions by execution resource (darco.RetireClass); Loads,
// Stores and Taken are orthogonal slices of the same instructions.
type Window struct {
	// Index numbers windows contiguously from 0 per stream.
	Index uint64 `json:"window"`
	// StartInsn is the zero-based index, in retired host instructions
	// of this stream, of the window's first instruction.
	StartInsn uint64 `json:"start_insn"`
	// Insns is how many host instructions the window covers: exactly
	// the windower's interval, except for a shorter final window.
	Insns uint64 `json:"insns"`

	Simple  uint64 `json:"simple"`
	Complex uint64 `json:"complex"`
	Memory  uint64 `json:"memory"`
	Branch  uint64 `json:"branch"`
	Vector  uint64 `json:"vector"`

	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`
	Taken  uint64 `json:"taken"`

	// Syncs counts the synchronization markers (syscalls, validations,
	// page transfers, the final sync) delivered inside the window.
	Syncs uint64 `json:"syncs"`
}

// Add accumulates w2 into w, leaving Index/StartInsn/Insns bookkeeping
// to the caller. It exists for consumers that re-window coarser.
func (w *Window) Add(w2 *Window) {
	w.Insns += w2.Insns
	w.Simple += w2.Simple
	w.Complex += w2.Complex
	w.Memory += w2.Memory
	w.Branch += w2.Branch
	w.Vector += w2.Vector
	w.Loads += w2.Loads
	w.Stores += w2.Stores
	w.Taken += w2.Taken
	w.Syncs += w2.Syncs
}

// count classifies one retired instruction into the window.
func (w *Window) count(ev *darco.RetireEvent) {
	w.Insns++
	switch ev.Class {
	case darco.RetireSimple:
		w.Simple++
	case darco.RetireComplex:
		w.Complex++
	case darco.RetireMemory:
		w.Memory++
	case darco.RetireBranch:
		w.Branch++
	case darco.RetireVector:
		w.Vector++
	}
	if ev.Load {
		w.Loads++
	}
	if ev.Store {
		w.Stores++
	}
	if ev.Taken {
		w.Taken++
	}
}

// Windower aggregates a retire stream into fixed-size windows. It is
// single-goroutine, like the retire stream that feeds it: Sink and
// Flush must run on the session's goroutine. The emit callback runs
// synchronously from inside Sink, so a consumer shared across sessions
// (the daemon's per-job event fan-in) must do its own locking there.
type Windower struct {
	interval uint64
	emit     func(Window)
	cur      Window
	total    uint64 // instructions streamed so far, window cuts included
}

// NewWindower builds a windower cutting every interval retired host
// instructions (values < 1 mean DefaultInterval). emit receives every
// completed window; call Flush after the session finishes to emit the
// final partial window.
func NewWindower(interval uint64, emit func(Window)) *Windower {
	if interval < 1 {
		interval = DefaultInterval
	}
	return &Windower{interval: interval, emit: emit}
}

// Interval reports the configured window length.
func (wd *Windower) Interval() uint64 { return wd.interval }

// Insns reports the total retired host instructions streamed so far.
func (wd *Windower) Insns() uint64 { return wd.total }

// Sink consumes one retire-stream delivery; subscribe it with
// Session.SubscribeRetires. Windows cut exactly on interval boundaries
// even mid-batch, so the emitted sequence is independent of the
// subscription's batch size.
func (wd *Windower) Sink(b darco.RetireBatch) {
	if b.Sync != nil {
		// Markers are positioned in retire order: attribute each to the
		// window open at its position without advancing the cut point.
		wd.cur.Syncs++
		return
	}
	for i := range b.Events {
		wd.cur.count(&b.Events[i])
		wd.total++
		if wd.cur.Insns >= wd.interval {
			wd.cut()
		}
	}
}

// Flush emits the in-progress window, if it holds anything — call once
// after the session has run to completion so the stream's tail is not
// lost. A window holding only sync markers (no instructions) is
// emitted too: the final validation sync always lands after the last
// retired instruction.
func (wd *Windower) Flush() {
	if wd.cur.Insns == 0 && wd.cur.Syncs == 0 {
		return
	}
	wd.cut()
}

// cut emits the current window and opens the next one.
func (wd *Windower) cut() {
	wd.emit(wd.cur)
	next := Window{Index: wd.cur.Index + 1, StartInsn: wd.cur.StartInsn + wd.cur.Insns}
	wd.cur = next
}
