// Package store is the campaign daemon's durable state: an
// append-only, CRC-checked record journal of every job's lifecycle —
// submission, start, per-scenario export rows, telemetry windows,
// terminal state — compacted into immutable per-job snapshot files
// once jobs finish.
//
// # Layout
//
// A store owns one directory:
//
//	LOCK          flock(2) guard against double-opens
//	journal.wal   the live append-only journal (header + framed records)
//	<job>.snap    one immutable snapshot per compacted (terminal) job
//
// Both file kinds share the same framing: an 8-byte magic header, then
// records as [uint32 length][uint32 CRC-32C][JSON payload]. Records
// embed the export/telemetry wire types, so a scenario row is stored
// in exactly the encoding the export endpoints serve — restoring a job
// and re-exporting it reproduces the pre-crash bytes.
//
// # Recovery
//
// Open replays the directory: snapshots load whole jobs, the journal
// replays everything since, and damage never costs more than the
// corrupt suffix — a truncated tail or checksum mismatch discards the
// record it hits and everything after it, keeps every intact record
// before it, and is reported in Recovery. After replay the journal is
// rewritten to hold only still-live jobs (terminal ones found in it
// are compacted to snapshots), so it stays bounded by in-flight work.
//
// # Durability knobs
//
// Options.Sync picks the fsync policy: every record, lifecycle records
// only (the default — telemetry windows ride on the OS flush), or
// none. A SIGKILLed process loses nothing under any policy (the bytes
// are in the page cache); the policies trade throughput against how
// much a machine crash can lose.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"darco/obs"
)

// SyncPolicy selects when the journal is fsynced.
type SyncPolicy int

const (
	// SyncLifecycle (the default) fsyncs every record except telemetry
	// windows: job transitions and scenario rows are durable against
	// machine crash, the high-rate telemetry stream is not.
	SyncLifecycle SyncPolicy = iota
	// SyncAlways fsyncs after every record.
	SyncAlways
	// SyncNone never fsyncs; the OS flushes on its own schedule.
	SyncNone
)

// Options configures a Store.
type Options struct {
	// Sync is the journal fsync policy.
	Sync SyncPolicy
	// Logf, when non-nil, receives recovery and compaction notices.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives append/fsync latency
	// observations — the daemons register these histograms on their
	// /metrics registries.
	Metrics *Metrics
}

// Metrics are the store's latency instrumentation points. Either
// histogram may be nil (not recorded).
type Metrics struct {
	// AppendSeconds observes the full Append call (encode + write +
	// any fsync).
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes only the journal fsync, when the policy
	// issues one.
	FsyncSeconds *obs.Histogram
}

// JobHistory is one job's recovered state, assembled from its snapshot
// or its journal records.
type JobHistory struct {
	ID        string
	Name      string
	Request   json.RawMessage
	Scenarios int

	// State is the last journaled state string: "queued" (submitted,
	// never started), "running" (started, no terminal record — the
	// daemon died mid-run), or the terminal state from the finished /
	// interrupted record.
	State       string
	Error       string
	WallMS      float64
	Parallelism int

	// CancelRequested records that a client cancelled the job before
	// any terminal record landed; recovery must not re-run it.
	CancelRequested bool

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	// Rows maps scenario index → journaled outcome row (wall metrics
	// included). For a job that finished cleanly it is complete; for an
	// interrupted job it holds exactly the scenarios that completed
	// before the crash.
	Rows map[int]RowRecord

	// Records is the job's full record history in append order — what
	// a snapshot serializes and what event-stream replay feeds from.
	Records []Record

	// TraceID / ParentSpan are the job's tracing identity from its
	// submission record; Spans are its journaled finished spans, in
	// append order. Together they restore GET /jobs/{id}/trace across
	// a restart.
	TraceID    string
	ParentSpan string
	Spans      []obs.Span

	// Coordinator-side (darco-sched) history: the journaled shard
	// fan-out. ShardPlan is the roster cut; Placements holds the most
	// recent placement lease per shard index; ShardsDone the terminal
	// state of shards whose gather loop completed. All empty for
	// worker-tier (darco-served) histories.
	ShardPlan  []ShardSpec
	Placements map[int]ShardPlacedRecord
	ShardsDone map[int]string

	submittedSeq uint64
}

// Terminal reports whether the history ended in a terminal record.
func (h *JobHistory) Terminal() bool {
	return h.State != "queued" && h.State != "running"
}

// Recovery summarizes what Open found and salvaged.
type Recovery struct {
	// Jobs is how many job histories were recovered in total.
	Jobs int
	// SnapshotJobs of those came from snapshot files.
	SnapshotJobs int
	// JournalRecords is the count of intact journal records replayed.
	JournalRecords int
	// Compacted is how many terminal journal-resident jobs Open moved
	// into snapshots.
	Compacted int
	// Corrupt is the reason the journal scan stopped early ("" for a
	// clean scan); DiscardedBytes is the journal suffix dropped with it.
	Corrupt        string
	DiscardedBytes int64
	// DiscardedSnapshots names snapshot files that failed validation
	// and were ignored wholesale.
	DiscardedSnapshots []string
}

// String renders the summary as one log-friendly line.
func (r Recovery) String() string {
	s := fmt.Sprintf("%d jobs (%d from snapshots, %d journal records, %d compacted)",
		r.Jobs, r.SnapshotJobs, r.JournalRecords, r.Compacted)
	if r.Corrupt != "" {
		s += fmt.Sprintf("; journal %s, %d bytes discarded", r.Corrupt, r.DiscardedBytes)
	}
	if len(r.DiscardedSnapshots) > 0 {
		s += fmt.Sprintf("; discarded snapshots %s", strings.Join(r.DiscardedSnapshots, ", "))
	}
	return s
}

// Store is an open campaign store. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	lock      *dirLock
	journal   *os.File
	seq       uint64
	jobs      map[string]*JobHistory
	order     []string
	inJournal map[string]bool // jobs whose records live in journal.wal
	meta      []Record        // store-level records (Job == "") recovered at Open
	recovery  Recovery
	closed    bool
}

const journalName = "journal.wal"

// Open locks dir (creating it if needed), replays its snapshots and
// journal, compacts terminal journal-resident jobs, rewrites the
// journal down to live jobs, and returns the store ready for appends.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:       dir,
		opts:      opts,
		lock:      lock,
		jobs:      make(map[string]*JobHistory),
		inJournal: make(map[string]bool),
	}
	if err := st.recover(); err != nil {
		lock.release()
		return nil, err
	}
	return st, nil
}

// Dir reports the store's directory.
func (st *Store) Dir() string { return st.dir }

// Recovery reports what Open found.
func (st *Store) Recovery() Recovery {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recovery
}

// Jobs returns the recovered histories in submission order. The slice
// is a snapshot; the histories are live and must not be mutated.
func (st *Store) Jobs() []*JobHistory {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*JobHistory, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	return out
}

// Meta returns the store-level records (empty Job) recovered at Open,
// in journal order — notably any KindCleanShutdown marker the previous
// owner appended. Markers do not survive into the rewritten journal, so
// each describes exactly the shutdown preceding this Open.
func (st *Store) Meta() []Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Record, len(st.meta))
	copy(out, st.meta)
	return out
}

// OpenWait is Open for a warm standby: while dir is flock-held by a
// live primary it waits, polling until the lease frees (the kernel
// drops a dead primary's flock even after SIGKILL, so takeover needs
// no consensus — just this lock), then recovers and returns like Open.
// Any error other than the held lease fails immediately.
func OpenWait(ctx context.Context, dir string, opts Options) (*Store, error) {
	const poll = 250 * time.Millisecond
	for {
		st, err := Open(dir, opts)
		if err == nil {
			return st, nil
		}
		if !errors.Is(err, ErrLocked) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("store: waiting for lease on %s: %w", dir, ctx.Err())
		case <-time.After(poll):
		}
	}
}

// recover loads snapshots, replays the journal, compacts terminal
// journal jobs, and rewrites the journal to the live remainder.
func (st *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(st.dir, "*.snap"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	snapshotted := make(map[string]bool)
	for _, name := range names {
		recs, err := readSnapshot(name)
		if err != nil {
			st.logf("store: discarding snapshot %s: %v", filepath.Base(name), err)
			st.recovery.DiscardedSnapshots = append(st.recovery.DiscardedSnapshots, filepath.Base(name))
			continue
		}
		for i := range recs {
			st.apply(&recs[i])
		}
		if len(recs) > 0 {
			snapshotted[recs[0].Job] = true
		}
		st.recovery.SnapshotJobs++
	}

	journalPath := filepath.Join(st.dir, journalName)
	var journalRecs []Record
	if raw, err := os.ReadFile(journalPath); err == nil {
		journalRecs = st.scanJournal(raw, snapshotted)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}

	// Terminal jobs still journal-resident become snapshots now; the
	// rewritten journal keeps only live (queued/running) jobs, so its
	// size is bounded by in-flight work, not history.
	live := make(map[string]bool)
	for _, rec := range journalRecs {
		// Store-level records (empty Job) are consumed by this
		// recovery — the Meta accessor exposes them — and dropped from
		// the rewritten journal: a clean-shutdown marker describes the
		// shutdown before this open, not the next one.
		if rec.Job == "" || snapshotted[rec.Job] {
			continue
		}
		live[rec.Job] = true
	}
	for id := range live {
		h := st.jobs[id]
		if h != nil && h.Terminal() {
			if err := st.writeSnapshot(h); err != nil {
				return err
			}
			delete(live, id)
			st.recovery.Compacted++
		}
	}
	f, err := os.CreateTemp(st.dir, journalName+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(f.Name())
	buf := append([]byte(nil), journalMagic[:]...)
	for _, rec := range journalRecs {
		if !live[rec.Job] {
			continue
		}
		if buf, err = appendFrame(buf, &rec); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: rewrite journal: %w", err)
	}
	if err := os.Rename(f.Name(), journalPath); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	st.inJournal = live
	st.journal, err = os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Slice(st.order, func(a, b int) bool {
		return st.jobs[st.order[a]].submittedSeq < st.jobs[st.order[b]].submittedSeq
	})
	st.recovery.Jobs = len(st.order)
	return nil
}

// scanJournal replays raw journal bytes, stopping at the first damaged
// frame and recording what was salvaged and discarded. Records for
// already-snapshotted jobs are skipped (the snapshot is the complete,
// authoritative copy; leftovers mean a crash landed between compaction
// and journal truncation).
func (st *Store) scanJournal(raw []byte, snapshotted map[string]bool) []Record {
	if len(raw) < len(journalMagic) || !bytes.Equal(raw[:len(journalMagic)], journalMagic[:]) {
		if len(raw) > 0 {
			st.recovery.Corrupt = "bad journal header"
			st.recovery.DiscardedBytes = int64(len(raw))
			st.logf("store: journal has no valid header; discarding %d bytes", len(raw))
		}
		return nil
	}
	body := raw[len(journalMagic):]
	sc := &frameScanner{r: bytes.NewReader(body)}
	var out []Record
	for {
		rec, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			st.recovery.Corrupt = err.Error()
			st.recovery.DiscardedBytes = int64(len(body)) - sc.offset
			st.logf("store: journal %v; salvaged %d records, discarded %d bytes",
				err, len(out), st.recovery.DiscardedBytes)
			break
		}
		if !snapshotted[rec.Job] {
			st.apply(rec)
			out = append(out, *rec)
		}
		st.recovery.JournalRecords++
	}
	return out
}

// apply folds one record into the job histories. Records with an empty
// Job are store-level (e.g. the clean-shutdown marker): they carry no
// job history and are collected separately for Meta.
func (st *Store) apply(rec *Record) {
	if rec.Seq > st.seq {
		st.seq = rec.Seq
	}
	if rec.Job == "" {
		st.meta = append(st.meta, *rec)
		return
	}
	h := st.jobs[rec.Job]
	if h == nil {
		h = &JobHistory{ID: rec.Job, State: "queued", Rows: make(map[int]RowRecord)}
		st.jobs[rec.Job] = h
		st.order = append(st.order, rec.Job)
	}
	h.Records = append(h.Records, *rec)
	switch rec.Kind {
	case KindSubmitted:
		if s := rec.Submitted; s != nil {
			h.Name = s.Name
			h.Scenarios = s.Scenarios
			h.Request = s.Request
			h.TraceID = s.TraceID
			h.ParentSpan = s.ParentSpan
		}
		h.SubmittedAt = rec.Time
		h.submittedSeq = rec.Seq
	case KindStarted:
		h.State = "running"
		h.StartedAt = rec.Time
	case KindRow:
		if r := rec.Row; r != nil {
			h.Rows[r.Index] = *r
		}
	case KindCancelRequested:
		h.CancelRequested = true
	case KindFinished:
		if f := rec.Finished; f != nil {
			h.State = f.State
			h.Error = f.Error
			h.WallMS = f.WallMS
			h.Parallelism = f.Parallelism
		}
		h.FinishedAt = rec.Time
	case KindInterrupted:
		h.State = "interrupted"
		if i := rec.Interrupted; i != nil {
			h.Error = i.Reason
		}
		h.FinishedAt = rec.Time
	case KindSpan:
		if s := rec.Span; s != nil {
			h.Spans = append(h.Spans, s.Span)
		}
	case KindShardPlan:
		if p := rec.ShardPlan; p != nil {
			h.ShardPlan = p.Shards
		}
	case KindShardPlaced:
		if p := rec.ShardPlaced; p != nil {
			if h.Placements == nil {
				h.Placements = make(map[int]ShardPlacedRecord)
			}
			h.Placements[p.Shard] = *p
		}
	case KindShardTerminal:
		if t := rec.ShardTerminal; t != nil {
			if h.ShardsDone == nil {
				h.ShardsDone = make(map[int]string)
			}
			h.ShardsDone[t.Shard] = t.State
		}
	}
}

// Append journals one record, assigning its sequence number and
// applying the configured fsync policy.
func (st *Store) Append(rec Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: append %s for %s: store is closed", rec.Kind, rec.Job)
	}
	// A compacted job's snapshot is its immutable, complete history;
	// accepting a late record (e.g. a cancel racing the job's terminal
	// transition) would re-mark the job journal-resident with no path
	// back to compaction, permanently disabling journal truncation.
	if h := st.jobs[rec.Job]; h != nil && h.Terminal() && !st.inJournal[rec.Job] {
		return fmt.Errorf("store: append %s for %s: job already compacted", rec.Kind, rec.Job)
	}
	st.seq++
	rec.Seq = st.seq
	var appendStart time.Time
	if m := st.opts.Metrics; m != nil && m.AppendSeconds != nil {
		appendStart = time.Now()
	}
	buf, err := appendFrame(nil, &rec)
	if err != nil {
		return err
	}
	if _, err := st.journal.Write(buf); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	// Spans and telemetry are observability records: under the
	// lifecycle policy they ride the OS flush instead of forcing an
	// fsync per record.
	sync := st.opts.Sync == SyncAlways ||
		(st.opts.Sync == SyncLifecycle && rec.Kind != KindTelemetry && rec.Kind != KindSpan)
	if sync {
		var fsyncStart time.Time
		if m := st.opts.Metrics; m != nil && m.FsyncSeconds != nil {
			fsyncStart = time.Now()
		}
		err = st.journal.Sync()
		if m := st.opts.Metrics; m != nil && m.FsyncSeconds != nil {
			m.FsyncSeconds.Observe(time.Since(fsyncStart).Seconds())
		}
	}
	if err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	if m := st.opts.Metrics; m != nil && m.AppendSeconds != nil {
		m.AppendSeconds.Observe(time.Since(appendStart).Seconds())
	}
	st.apply(&rec)
	if rec.Job != "" {
		st.inJournal[rec.Job] = true
	}
	return nil
}

// CompactJob freezes a terminal job into its immutable snapshot file
// and, when that empties the journal of live jobs, truncates the
// journal back to its header.
func (st *Store) CompactJob(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: compact %s: store is closed", id)
	}
	h := st.jobs[id]
	if h == nil {
		return fmt.Errorf("store: compact %s: unknown job", id)
	}
	if !h.Terminal() {
		return fmt.Errorf("store: compact %s: job is %s, not terminal", id, h.State)
	}
	if !st.inJournal[id] {
		return nil // already snapshotted
	}
	if err := st.writeSnapshot(h); err != nil {
		return err
	}
	delete(st.inJournal, id)
	if len(st.inJournal) == 0 {
		if err := st.journal.Truncate(int64(len(journalMagic))); err != nil {
			return fmt.Errorf("store: truncate journal: %w", err)
		}
		if err := st.journal.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	return nil
}

// writeSnapshot persists h's full record history atomically
// (temp + fsync + rename). Caller holds st.mu or is in recover.
func (st *Store) writeSnapshot(h *JobHistory) error {
	buf := append([]byte(nil), snapshotMagic[:]...)
	var err error
	for i := range h.Records {
		if buf, err = appendFrame(buf, &h.Records[i]); err != nil {
			return err
		}
	}
	f, err := os.CreateTemp(st.dir, h.ID+".snap.tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: snapshot %s: %w", h.ID, err)
	}
	if err := os.Rename(f.Name(), filepath.Join(st.dir, h.ID+".snap")); err != nil {
		return fmt.Errorf("store: snapshot %s: %w", h.ID, err)
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	st.logf("store: compacted %s (%d records)", h.ID, len(h.Records))
	return nil
}

// readSnapshot loads one snapshot file. Snapshots are written
// atomically, so any damage fails the whole file.
func readSnapshot(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapshotMagic) || !bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic[:]) {
		return nil, fmt.Errorf("bad snapshot header")
	}
	sc := &frameScanner{r: bytes.NewReader(raw[len(snapshotMagic):])}
	var out []Record
	for {
		rec, err := sc.next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, *rec)
	}
}

// Close flushes and releases the store. Appends after Close fail.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var err error
	if st.journal != nil {
		if st.opts.Sync != SyncNone {
			err = st.journal.Sync()
		}
		if cerr := st.journal.Close(); err == nil {
			err = cerr
		}
	}
	if lerr := st.lock.release(); err == nil {
		err = lerr
	}
	return err
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

func (st *Store) logf(format string, args ...any) {
	if st.opts.Logf != nil {
		st.opts.Logf(format, args...)
	}
}
