package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darco/export"
	"darco/telemetry"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustAppend(t *testing.T, st *Store, rec Record) {
	t.Helper()
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func at(sec int) time.Time { return time.Unix(1700000000+int64(sec), 0).UTC() }

// appendLifecycle journals a complete two-scenario job.
func appendLifecycle(t *testing.T, st *Store, id string) {
	t.Helper()
	mustAppend(t, st, Record{Kind: KindSubmitted, Job: id, Time: at(0), Submitted: &SubmittedRecord{
		Name: "n-" + id, Scenarios: 2, Request: json.RawMessage(`{"scenarios":[{"profile":"429.mcf"}]}`),
	}})
	mustAppend(t, st, Record{Kind: KindStarted, Job: id, Time: at(1)})
	for i := 0; i < 2; i++ {
		mustAppend(t, st, Record{Kind: KindRow, Job: id, Time: at(2 + i), Row: &RowRecord{
			Index: i, Row: export.Row{Scenario: "429.mcf", Suite: "SPECint", Scale: 1,
				GuestInsns: uint64(1000 + i), Overhead: map[string]uint64{"interp": 5}, WallMS: 1.5},
		}})
	}
	mustAppend(t, st, Record{Kind: KindTelemetry, Job: id, Time: at(4), Telemetry: &TelemetryRecord{
		Index: 0, Scenario: "429.mcf", Window: telemetry.Window{Insns: 100, Simple: 100},
	}})
	mustAppend(t, st, Record{Kind: KindFinished, Job: id, Time: at(5), Finished: &FinishedRecord{
		State: "done", WallMS: 12.5, Parallelism: 2,
	}})
}

func TestRoundTripAndCompactionAtOpen(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	appendLifecycle(t, st, "job-1")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if rec.Jobs != 1 || rec.JournalRecords != 6 || rec.Compacted != 1 || rec.Corrupt != "" {
		t.Fatalf("recovery: %+v", rec)
	}
	jobs := st2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("%d jobs recovered", len(jobs))
	}
	h := jobs[0]
	if h.ID != "job-1" || h.Name != "n-job-1" || h.State != "done" || !h.Terminal() {
		t.Fatalf("history: %+v", h)
	}
	if h.Scenarios != 2 || len(h.Rows) != 2 || h.Rows[1].Row.GuestInsns != 1001 {
		t.Fatalf("rows: %+v", h.Rows)
	}
	if h.WallMS != 12.5 || h.Parallelism != 2 {
		t.Fatalf("finished payload: %+v", h)
	}
	if !h.SubmittedAt.Equal(at(0)) || !h.StartedAt.Equal(at(1)) || !h.FinishedAt.Equal(at(5)) {
		t.Fatalf("timestamps: %v %v %v", h.SubmittedAt, h.StartedAt, h.FinishedAt)
	}
	if len(h.Records) != 6 {
		t.Fatalf("%d records in history", len(h.Records))
	}

	// The terminal job was compacted at open: snapshot on disk, journal
	// back to bare header.
	if _, err := os.Stat(filepath.Join(dir, "job-1.snap")); err != nil {
		t.Fatalf("no snapshot after compaction at open: %v", err)
	}
	if raw, _ := os.ReadFile(filepath.Join(dir, journalName)); len(raw) != len(journalMagic) {
		t.Fatalf("journal holds %d bytes, want bare header (%d)", len(raw), len(journalMagic))
	}

	// Third open loads from the snapshot alone.
	st2.Close()
	st3 := mustOpen(t, dir)
	defer st3.Close()
	if rec := st3.Recovery(); rec.SnapshotJobs != 1 || rec.Jobs != 1 || rec.JournalRecords != 0 {
		t.Fatalf("snapshot-only recovery: %+v", rec)
	}
	if h := st3.Jobs()[0]; h.State != "done" || len(h.Rows) != 2 {
		t.Fatalf("snapshot history: %+v", h)
	}
}

func TestCompactJobTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	defer st.Close()
	appendLifecycle(t, st, "job-1")
	mustAppend(t, st, Record{Kind: KindSubmitted, Job: "job-2", Time: at(9), Submitted: &SubmittedRecord{
		Scenarios: 1, Request: json.RawMessage(`{}`),
	}})

	if err := st.CompactJob("job-2"); err == nil {
		t.Fatal("compacting a queued job did not fail")
	}
	if err := st.CompactJob("job-1"); err != nil {
		t.Fatal(err)
	}
	// job-2 is still live, so the journal must keep its records.
	if raw, _ := os.ReadFile(filepath.Join(dir, journalName)); len(raw) <= len(journalMagic) {
		t.Fatal("journal lost the live job's records")
	}
	// Idempotent on an already-snapshotted job.
	if err := st.CompactJob("job-1"); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, Record{Kind: KindFinished, Job: "job-2", Time: at(10), Finished: &FinishedRecord{State: "cancelled"}})
	if err := st.CompactJob("job-2"); err != nil {
		t.Fatal(err)
	}
	if raw, _ := os.ReadFile(filepath.Join(dir, journalName)); len(raw) != len(journalMagic) {
		t.Fatalf("journal holds %d bytes after last live job compacted", len(raw))
	}
}

// frameOffsets parses the journal's framing and returns each record's
// start offset (absolute, header included) plus the file length.
func frameOffsets(t *testing.T, path string) ([]int, int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int
	off := len(journalMagic)
	for off < len(raw) {
		offs = append(offs, off)
		size := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		off += recHeaderSize + size
	}
	if off != len(raw) {
		t.Fatalf("journal framing does not tile the file: %d vs %d", off, len(raw))
	}
	return offs, len(raw)
}

// TestTruncatedTailRecord: a journal cut mid-record (the crash case —
// an append that never finished) salvages every complete record and
// reports the dropped suffix.
func TestTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	// No terminal record: the job stays journal-resident.
	mustAppend(t, st, Record{Kind: KindSubmitted, Job: "job-1", Time: at(0), Submitted: &SubmittedRecord{
		Scenarios: 2, Request: json.RawMessage(`{}`)}})
	mustAppend(t, st, Record{Kind: KindStarted, Job: "job-1", Time: at(1)})
	mustAppend(t, st, Record{Kind: KindRow, Job: "job-1", Time: at(2), Row: &RowRecord{
		Index: 0, Row: export.Row{Scenario: "x", GuestInsns: 7}}})
	st.Close()

	path := filepath.Join(dir, journalName)
	offs, size := frameOffsets(t, path)
	if len(offs) != 3 {
		t.Fatalf("%d records journaled", len(offs))
	}
	// Cut inside the last record's payload.
	if err := os.Truncate(path, int64(size-5)); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if rec.JournalRecords != 2 || !strings.Contains(rec.Corrupt, "truncated") {
		t.Fatalf("recovery: %+v", rec)
	}
	if want := int64(size-5) - int64(offs[2]); rec.DiscardedBytes != want {
		t.Fatalf("discarded %d bytes, want %d", rec.DiscardedBytes, want)
	}
	h := st2.Jobs()[0]
	if h.State != "running" || len(h.Rows) != 0 {
		t.Fatalf("salvaged history: state %s, %d rows", h.State, len(h.Rows))
	}
	// The store stays appendable: the journal was rewritten to the
	// intact prefix.
	mustAppend(t, st2, Record{Kind: KindFinished, Job: "job-1", Time: at(3), Finished: &FinishedRecord{State: "cancelled"}})
	st2.Close()
	st3 := mustOpen(t, dir)
	defer st3.Close()
	if h := st3.Jobs()[0]; h.State != "cancelled" {
		t.Fatalf("state after post-salvage append: %s", h.State)
	}
}

// TestCRCMismatchMidJournal: a flipped byte in the middle of the
// journal keeps the records before it and discards it plus everything
// after (framing beyond a corrupt record cannot be trusted).
func TestCRCMismatchMidJournal(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	mustAppend(t, st, Record{Kind: KindSubmitted, Job: "job-1", Time: at(0), Submitted: &SubmittedRecord{
		Scenarios: 2, Request: json.RawMessage(`{}`)}})
	mustAppend(t, st, Record{Kind: KindStarted, Job: "job-1", Time: at(1)})
	for i := 0; i < 2; i++ {
		mustAppend(t, st, Record{Kind: KindRow, Job: "job-1", Time: at(2 + i), Row: &RowRecord{
			Index: i, Row: export.Row{Scenario: "x", GuestInsns: uint64(i)}}})
	}
	st.Close()

	path := filepath.Join(dir, journalName)
	offs, size := frameOffsets(t, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 2 (the first row).
	raw[offs[2]+recHeaderSize+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if rec.JournalRecords != 2 || !strings.Contains(rec.Corrupt, "checksum mismatch") {
		t.Fatalf("recovery: %+v", rec)
	}
	if want := int64(size - offs[2]); rec.DiscardedBytes != want {
		t.Fatalf("discarded %d bytes, want %d (both rows)", rec.DiscardedBytes, want)
	}
	h := st2.Jobs()[0]
	if h.State != "running" || len(h.Rows) != 0 {
		t.Fatalf("salvaged history: state %s, %d rows", h.State, len(h.Rows))
	}
}

// TestStaleLockDoesNotBlock: a LOCK file left behind by a SIGKILLed
// process (no flock held) must not prevent the next open, while a held
// lock must.
func TestStaleLockDoesNotBlock(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("pid 99999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, dir) // stale lock: acquires
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("double-open of a held store succeeded")
	} else if !strings.Contains(err.Error(), "locked by") {
		t.Fatalf("double-open error: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir) // released: reacquires
	st2.Close()
}

// TestBadSnapshotDiscarded: a damaged snapshot is ignored wholesale
// and reported, without failing the open.
func TestBadSnapshotDiscarded(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	appendLifecycle(t, st, "job-1")
	if err := st.CompactJob("job-1"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	snap := filepath.Join(dir, "job-1.snap")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir)
	defer st2.Close()
	rec := st2.Recovery()
	if len(rec.DiscardedSnapshots) != 1 || rec.DiscardedSnapshots[0] != "job-1.snap" {
		t.Fatalf("recovery: %+v", rec)
	}
	if rec.Jobs != 0 {
		t.Fatalf("%d jobs from a corrupt snapshot", rec.Jobs)
	}
}

// TestSyncPolicies just exercises each policy end to end.
func TestSyncPolicies(t *testing.T) {
	for _, sp := range []SyncPolicy{SyncLifecycle, SyncAlways, SyncNone} {
		dir := t.TempDir()
		st, err := Open(dir, Options{Sync: sp})
		if err != nil {
			t.Fatal(err)
		}
		appendLifecycle(t, st, "job-1")
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2 := mustOpen(t, dir)
		if h := st2.Jobs()[0]; h.State != "done" {
			t.Fatalf("policy %d: state %s", sp, h.State)
		}
		st2.Close()
	}
}

// TestAppendAfterCloseFails pins the closed-store contract the serve
// layer relies on during shutdown races.
func TestAppendAfterCloseFails(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	st.Close()
	if err := st.Append(Record{Kind: KindStarted, Job: "job-1"}); err == nil {
		t.Fatal("append on a closed store succeeded")
	}
}

// appendFederated journals a coordinator-style mid-run job: submitted,
// started, a two-shard plan, one placement lease, one gathered row, and
// one shard terminal — the exact shape a crashed darco-sched leaves.
func appendFederated(t *testing.T, st *Store, id string) {
	t.Helper()
	mustAppend(t, st, Record{Kind: KindSubmitted, Job: id, Time: at(0), Submitted: &SubmittedRecord{
		Name: "fed-" + id, Scenarios: 3, Request: json.RawMessage(`{"scenarios":[{"profile":"429.mcf"}]}`),
	}})
	mustAppend(t, st, Record{Kind: KindStarted, Job: id, Time: at(1)})
	mustAppend(t, st, Record{Kind: KindShardPlan, Job: id, Time: at(2), ShardPlan: &ShardPlanRecord{
		Shards: []ShardSpec{{Start: 0, Count: 2}, {Start: 2, Count: 1}},
	}})
	mustAppend(t, st, Record{Kind: KindShardPlaced, Job: id, Time: at(3), ShardPlaced: &ShardPlacedRecord{
		Shard: 0, Worker: "http://w1:8080", WorkerJob: "job-7", Attempt: 2, Scenarios: []int{0, 1},
	}})
	mustAppend(t, st, Record{Kind: KindRow, Job: id, Time: at(4), Row: &RowRecord{
		Index: 1, Row: export.Row{Scenario: "429.mcf", Suite: "SPECint", Scale: 1, GuestInsns: 1234},
	}})
	mustAppend(t, st, Record{Kind: KindShardTerminal, Job: id, Time: at(5), ShardTerminal: &ShardTerminalRecord{
		Shard: 0, State: "done",
	}})
}

// checkFederated asserts the shard-level fields appendFederated wrote.
func checkFederated(t *testing.T, h *JobHistory) {
	t.Helper()
	if h.State != "running" || h.Scenarios != 3 {
		t.Fatalf("history: %+v", h)
	}
	if len(h.ShardPlan) != 2 || h.ShardPlan[0] != (ShardSpec{Start: 0, Count: 2}) || h.ShardPlan[1] != (ShardSpec{Start: 2, Count: 1}) {
		t.Fatalf("shard plan: %+v", h.ShardPlan)
	}
	pl, ok := h.Placements[0]
	if !ok || pl.Worker != "http://w1:8080" || pl.WorkerJob != "job-7" || pl.Attempt != 2 ||
		len(pl.Scenarios) != 2 || pl.Scenarios[0] != 0 || pl.Scenarios[1] != 1 {
		t.Fatalf("placement lease: %+v (ok %v)", pl, ok)
	}
	if h.ShardsDone[0] != "done" || len(h.ShardsDone) != 1 {
		t.Fatalf("shard terminals: %+v", h.ShardsDone)
	}
	if len(h.Rows) != 1 || h.Rows[1].Row.GuestInsns != 1234 {
		t.Fatalf("rows: %+v", h.Rows)
	}
}

// TestShardRecordsAndMarkerRoundTrip covers the coordinator's record
// kinds end to end: shard plan / placement / terminal survive a journal
// replay and then snapshot compaction, and the store-level
// clean-shutdown marker is visible to exactly the next open.
func TestShardRecordsAndMarkerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	appendFederated(t, st, "job-1")
	mustAppend(t, st, Record{Kind: KindCleanShutdown, Time: at(6)})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// First reopen: everything replays from the journal, the marker is
	// exposed via Meta.
	st2 := mustOpen(t, dir)
	meta := st2.Meta()
	if len(meta) != 1 || meta[0].Kind != KindCleanShutdown {
		t.Fatalf("meta after reopen: %+v", meta)
	}
	if len(st2.Jobs()) != 1 {
		t.Fatalf("%d jobs recovered", len(st2.Jobs()))
	}
	checkFederated(t, st2.Jobs()[0])
	// Finish the job so the next open compacts it into a snapshot.
	mustAppend(t, st2, Record{Kind: KindFinished, Job: "job-1", Time: at(7), Finished: &FinishedRecord{
		State: "done", WallMS: 8.5, Parallelism: 2,
	}})
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second reopen: the marker described only the first shutdown — the
	// rewritten journal dropped it — and compaction freezes the job.
	st3 := mustOpen(t, dir)
	if len(st3.Meta()) != 0 {
		t.Fatalf("marker leaked into a later open: %+v", st3.Meta())
	}
	if rec := st3.Recovery(); rec.Compacted != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	h := st3.Jobs()[0]
	if h.State != "done" {
		t.Fatalf("state %s after finish", h.State)
	}
	if len(h.ShardPlan) != 2 || h.Placements[0].WorkerJob != "job-7" || h.ShardsDone[0] != "done" {
		t.Fatalf("shard fields lost before compaction: %+v", h)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}

	// Third reopen loads from the snapshot alone: the shard-level
	// fields must survive the snapshot round trip too.
	st4 := mustOpen(t, dir)
	defer st4.Close()
	if rec := st4.Recovery(); rec.SnapshotJobs != 1 || rec.JournalRecords != 0 {
		t.Fatalf("snapshot-only recovery: %+v", rec)
	}
	h = st4.Jobs()[0]
	if h.State != "done" || len(h.ShardPlan) != 2 || h.Placements[0].WorkerJob != "job-7" ||
		h.ShardsDone[0] != "done" || h.Rows[1].Row.GuestInsns != 1234 {
		t.Fatalf("snapshot history: %+v", h)
	}
}

// TestOpenWaitStandbyLease pins the failover-lease contract: a held
// directory fails fast with ErrLocked, OpenWait blocks until its
// context ends, and acquires the store the moment the holder closes.
func TestOpenWaitStandbyLease(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := OpenWait(ctx, dir, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("OpenWait under a live holder: %v, want deadline exceeded", err)
	}

	go func() {
		time.Sleep(400 * time.Millisecond)
		st.Close()
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	st2, err := OpenWait(waitCtx, dir, Options{})
	if err != nil {
		t.Fatalf("OpenWait after the holder closed: %v", err)
	}
	st2.Close()
}
