package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// ErrLocked reports that a data directory's flock lease is held by a
// live process. A standby coordinator waits on it (see OpenWait); any
// other caller should treat it as "someone else owns this dir".
var ErrLocked = errors.New("data dir is locked")

// dirLock guards a data directory against double-opens: two daemons
// appending to one journal would interleave frames and corrupt it.
//
// The guard is a flock(2) on a LOCK file, so it is crash-safe by
// construction: the kernel drops the lock when the owning process dies,
// and a stale LOCK file left behind by a SIGKILLed daemon never blocks
// the next open. The owning pid is written into the file purely as a
// diagnostic for humans (and for the error message of a losing open).
type dirLock struct {
	f *os.File
}

func lockDir(dir string) (*dirLock, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner := "unknown process"
		if raw, rerr := os.ReadFile(path); rerr == nil && len(raw) > 0 {
			owner = strings.TrimSpace(string(raw))
		}
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by %s (%v): %w", dir, owner, err, ErrLocked)
	}
	// Held. Refresh the diagnostic pid; failures here are cosmetic.
	if err := f.Truncate(0); err == nil {
		fmt.Fprintf(f, "pid %d\n", os.Getpid())
		f.Sync()
	}
	return &dirLock{f: f}, nil
}

// release drops the lock. The LOCK file itself is left in place — it
// is the lock's rendezvous point, and removing it would race a
// concurrent open.
func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
