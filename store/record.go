package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"darco/export"
	"darco/obs"
	"darco/telemetry"
)

// Kind tags what a journal record describes.
type Kind string

// Record kinds, in the order a job's history normally emits them.
const (
	// KindSubmitted opens a job's history: its id, name and the raw
	// submission request (replayed to rebuild the job on recovery).
	KindSubmitted Kind = "submitted"
	// KindStarted marks the transition to running.
	KindStarted Kind = "started"
	// KindRow records one scenario's outcome as the deterministic
	// export.Row (wall metrics included, so both the byte-comparable
	// default export and the ?wall=1 view restore from it).
	KindRow Kind = "row"
	// KindTelemetry records one instruction-mix window of an in-flight
	// scenario; it exists for event-stream replay, not for exports.
	KindTelemetry Kind = "telemetry"
	// KindCancelRequested marks a client cancel on a not-yet-terminal
	// job. The terminal record still follows once the job observes the
	// cancellation — this record exists so a daemon that dies first
	// does not re-queue a job its client already cancelled.
	KindCancelRequested Kind = "cancel_requested"
	// KindFinished closes a job's history with its terminal state.
	KindFinished Kind = "finished"
	// KindInterrupted is appended during recovery for a job found
	// mid-run: the daemon died before the job could finish.
	KindInterrupted Kind = "interrupted"
	// KindSpan records one finished tracing span of the job (queue
	// wait, a scenario, a shard, the job root). Spans journal so GET
	// /jobs/{id}/trace survives restarts like every other surface; they
	// ride the OS flush under SyncLifecycle, like telemetry — losing a
	// span to a machine crash degrades a trace, not a job.
	KindSpan Kind = "span"

	// The remaining kinds are the fleet coordinator's (darco-sched):
	// a federated job journals its shard fan-out through them, so a
	// restarted (or failed-over) coordinator can re-adopt the
	// worker-side shard jobs instead of re-dispatching them.

	// KindShardPlan records how the job's roster was cut into
	// contiguous shards.
	KindShardPlan Kind = "shard_plan"
	// KindShardPlaced records one shard's placement lease: which
	// worker accepted it, under which worker-side job id, and exactly
	// which global scenario indices that submission carried (the
	// positional mapping a re-adopted event stream is decoded with).
	KindShardPlaced Kind = "shard_placed"
	// KindShardTerminal records that a shard's gather loop finished:
	// every one of its scenarios has a committed row.
	KindShardTerminal Kind = "shard_terminal"

	// KindCleanShutdown is a store-level marker (Job empty) appended
	// when a daemon finishes a graceful shutdown with every runner
	// drained. Its presence tells the next open that "running"
	// histories cannot exist by accident; its absence marks a crash.
	// Markers are consumed at recovery: the rewritten journal drops
	// them, so each one describes exactly one shutdown.
	KindCleanShutdown Kind = "clean_shutdown"
)

// Record is one journal entry. Exactly one of the payload pointers
// matching Kind is set; the envelope fields are common to all kinds.
// Records marshal as JSON inside the journal's CRC-checked binary
// framing, so the on-disk encoding of rows and telemetry windows is
// exactly the export/telemetry wire encoding.
type Record struct {
	// Seq is the store-assigned append sequence, strictly increasing
	// across the store's lifetime (snapshots preserve it).
	Seq  uint64    `json:"seq"`
	Kind Kind      `json:"kind"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	Submitted     *SubmittedRecord     `json:"submitted,omitempty"`
	Row           *RowRecord           `json:"row,omitempty"`
	Telemetry     *TelemetryRecord     `json:"telemetry,omitempty"`
	Finished      *FinishedRecord      `json:"finished,omitempty"`
	Interrupted   *InterruptedRecord   `json:"interrupted,omitempty"`
	Span          *SpanRecord          `json:"span,omitempty"`
	ShardPlan     *ShardPlanRecord     `json:"shard_plan,omitempty"`
	ShardPlaced   *ShardPlacedRecord   `json:"shard_placed,omitempty"`
	ShardTerminal *ShardTerminalRecord `json:"shard_terminal,omitempty"`
}

// SubmittedRecord carries the accepted submission.
type SubmittedRecord struct {
	Name string `json:"name,omitempty"`
	// Scenarios is the roster size (kept even though Request implies
	// it, so recovery can size statuses without re-validating).
	Scenarios int `json:"scenarios"`
	// Request is the raw JSON submission body, replayed through the
	// server's validator to re-queue the job after a restart.
	Request json.RawMessage `json:"request"`
	// TraceID / ParentSpan pin the job's tracing identity across
	// restarts: a recovered job keeps emitting spans into the same
	// trace, so a federated trace stitches even when the coordinator
	// dies mid-job. ParentSpan is the propagated upstream span (the
	// coordinator's shard span) for worker-side jobs.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// RowRecord is one scenario outcome.
type RowRecord struct {
	Index int        `json:"index"`
	Row   export.Row `json:"row"`
}

// TelemetryRecord is one live instruction-mix window.
type TelemetryRecord struct {
	Index    int              `json:"index"`
	Scenario string           `json:"scenario"`
	Window   telemetry.Window `json:"window"`
}

// FinishedRecord closes a job with its terminal state. State is the
// serve layer's job-state string ("done", "failed", "cancelled"); the
// store treats it opaquely except for recognizing terminal histories.
type FinishedRecord struct {
	State       string  `json:"state"`
	Error       string  `json:"error,omitempty"`
	WallMS      float64 `json:"wall_ms"`
	Parallelism int     `json:"parallelism"`
}

// InterruptedRecord marks a mid-run job whose daemon died.
type InterruptedRecord struct {
	Reason string `json:"reason"`
}

// SpanRecord is one finished tracing span.
type SpanRecord struct {
	Span obs.Span `json:"span"`
}

// ShardSpec is one contiguous shard of a federated job's roster:
// global scenario indices [Start, Start+Count).
type ShardSpec struct {
	Start int `json:"start"`
	Count int `json:"count"`
}

// ShardPlanRecord records a federated job's shard fan-out.
type ShardPlanRecord struct {
	Shards []ShardSpec `json:"shards"`
}

// ShardPlacedRecord is one shard placement lease. Scenarios lists the
// global indices the worker-side submission carried, in submission
// order — the shard job's local scenario index i maps to Scenarios[i].
type ShardPlacedRecord struct {
	Shard     int    `json:"shard"`
	Worker    string `json:"worker"`
	WorkerJob string `json:"worker_job"`
	Attempt   int    `json:"attempt"`
	Scenarios []int  `json:"scenarios"`
	// Span is the shard's trace span id — the parent the worker-side
	// job spans were stitched under via the X-Darco-Trace header. A
	// re-adopting coordinator reuses it so the re-adopted shard's spans
	// stay attached to the same subtree.
	Span string `json:"span,omitempty"`
}

// ShardTerminalRecord closes one shard's gather loop.
type ShardTerminalRecord struct {
	Shard int    `json:"shard"`
	State string `json:"state"`
}

// On-disk framing: an 8-byte file header (magic + format version),
// then records as [uint32 payload length][uint32 CRC-32C of payload]
// [JSON payload]. Little-endian, like the rest of the fields the
// emulator persists. A reader that hits a short frame or a checksum
// mismatch keeps every record before it — the salvageable prefix — and
// reports what it discarded.
var (
	journalMagic  = [8]byte{'D', 'A', 'R', 'C', 'O', 'W', 'A', '1'}
	snapshotMagic = [8]byte{'D', 'A', 'R', 'C', 'O', 'S', 'N', '1'}
)

const (
	recHeaderSize = 8
	// maxRecordSize bounds a single record frame; a length prefix
	// beyond it is treated as corruption, not an allocation request.
	maxRecordSize = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes rec into buf's framing and returns the extended
// buffer.
func appendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// frameScanner reads framed records sequentially, tracking the byte
// offset of the last cleanly-read frame so recovery can truncate a
// corrupt file to its intact prefix.
type frameScanner struct {
	r      io.Reader
	offset int64 // end of the last good frame (after the file header)
}

// errCorrupt wraps any framing-level damage: short frames, oversized
// lengths, checksum mismatches, or undecodable payloads.
type errCorrupt struct {
	offset int64
	reason string
}

func (e *errCorrupt) Error() string {
	return fmt.Sprintf("corrupt record at offset %d: %s", e.offset, e.reason)
}

// next reads one record. io.EOF means a clean end; *errCorrupt means
// the remainder of the file is unusable.
func (s *frameScanner) next() (*Record, error) {
	var hdr [recHeaderSize]byte
	n, err := io.ReadFull(s.r, hdr[:])
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, &errCorrupt{offset: s.offset, reason: fmt.Sprintf("truncated frame header (%d of %d bytes)", n, recHeaderSize)}
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if size > maxRecordSize {
		return nil, &errCorrupt{offset: s.offset, reason: fmt.Sprintf("implausible record length %d", size)}
	}
	payload := make([]byte, size)
	if n, err := io.ReadFull(s.r, payload); err != nil {
		return nil, &errCorrupt{offset: s.offset, reason: fmt.Sprintf("truncated payload (%d of %d bytes)", n, size)}
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, &errCorrupt{offset: s.offset, reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	rec := new(Record)
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, &errCorrupt{offset: s.offset, reason: fmt.Sprintf("undecodable payload: %v", err)}
	}
	s.offset += int64(recHeaderSize) + int64(size)
	return rec, nil
}
