package darco_test

// Benchmark harness regenerating the paper's evaluation (§VI). One
// benchmark per table/figure, plus ablation benches for the design
// choices DESIGN.md calls out. Figures are reported through
// b.ReportMetric so `go test -bench` prints the paper's headline
// numbers; `cmd/darco-bench` prints the full per-benchmark rows.

import (
	"context"
	"testing"

	darco "darco"

	"darco/internal/experiments"
	"darco/internal/guest"
	"darco/internal/warmup"
	"darco/internal/workload"
)

// benchRun executes im on a fresh Engine built from cfg (the new
// public surface; the deprecated darco.Run facade is exercised only by
// its own tests).
func benchRun(b *testing.B, im *guest.Image, cfg darco.Config) *darco.Result {
	b.Helper()
	eng, err := darco.NewEngine(darco.WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchScale keeps the full-suite benches tractable while preserving
// the figures' shapes (validated at scale 1.0 in EXPERIMENTS.md).
const benchScale = 0.5

func runSuitesB(b *testing.B, scale float64) []experiments.BenchResult {
	b.Helper()
	rs, err := experiments.RunSuites(scale, darco.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

func suiteMetric(b *testing.B, rs []experiments.BenchResult, suite string,
	f func(*experiments.BenchResult) float64, name string) {
	var sum float64
	var n int
	for i := range rs {
		if rs[i].Profile.Suite == suite {
			sum += f(&rs[i])
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), name)
	}
}

// BenchmarkTableSpeedFunctional measures the §VI-A guest/host emulation
// rates of the functional stack (paper: 3.4 guest MIPS, 20 host MIPS on
// a 2017 cluster core; absolute values are machine-dependent).
func BenchmarkTableSpeedFunctional(b *testing.B) {
	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	var guestMIPS, hostMIPS float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, im, darco.DefaultConfig())
		guestMIPS = res.GuestMIPS
		hostMIPS = res.HostMIPS
	}
	b.ReportMetric(guestMIPS, "guest-MIPS")
	b.ReportMetric(hostMIPS, "host-MIPS")
}

// BenchmarkTableSpeedTiming measures the same rates with the timing
// simulator attached (paper: 370 guest KIPS, 2 host MIPS).
func BenchmarkTableSpeedTiming(b *testing.B) {
	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	var guestMIPS, hostMIPS float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, im, darco.TimingConfig())
		guestMIPS = res.GuestMIPS
		hostMIPS = res.HostMIPS
	}
	b.ReportMetric(guestMIPS*1000, "guest-KIPS")
	b.ReportMetric(hostMIPS, "host-MIPS")
}

// BenchmarkTableSpeedTimingPipelined measures the timing rates with the
// timing model decoupled behind the retirement pipeline (the two-stage
// emulate-ahead/time-behind split). Counters are bit-identical to
// BenchmarkTableSpeedTiming — timing_pipeline_test.go pins that — so the
// ns/op delta between the two benches is the pipeline's speedup.
func BenchmarkTableSpeedTimingPipelined(b *testing.B) {
	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	var guestMIPS, hostMIPS float64
	for i := 0; i < b.N; i++ {
		eng, err := darco.NewEngine(
			darco.WithConfig(darco.TimingConfig()),
			darco.WithTimingPipeline(experiments.BenchPipelineDepth))
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(context.Background(), im)
		if err != nil {
			b.Fatal(err)
		}
		guestMIPS = res.GuestMIPS
		hostMIPS = res.HostMIPS
	}
	b.ReportMetric(guestMIPS*1000, "guest-KIPS")
	b.ReportMetric(hostMIPS, "host-MIPS")
}

// BenchmarkFig4ModeDistribution regenerates Fig. 4: per-suite average
// dynamic guest instruction share in SBM (paper: 88 / 96 / 75 %).
func BenchmarkFig4ModeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuitesB(b, benchScale)
		sbm := func(r *experiments.BenchResult) float64 {
			_, _, s := r.Res.ModeShares()
			return 100 * s
		}
		suiteMetric(b, rs, workload.SuiteINT, sbm, "SBM%-INT")
		suiteMetric(b, rs, workload.SuiteFP, sbm, "SBM%-FP")
		suiteMetric(b, rs, workload.SuitePhysics, sbm, "SBM%-Phys")
	}
}

// BenchmarkFig5EmulationCost regenerates Fig. 5: host instructions per
// guest instruction in SBM (paper: 4 / 2.6 / 3.1).
func BenchmarkFig5EmulationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuitesB(b, benchScale)
		cost := func(r *experiments.BenchResult) float64 { return r.Res.EmulationCostSBM() }
		suiteMetric(b, rs, workload.SuiteINT, cost, "cost-INT")
		suiteMetric(b, rs, workload.SuiteFP, cost, "cost-FP")
		suiteMetric(b, rs, workload.SuitePhysics, cost, "cost-Phys")
	}
}

// BenchmarkFig6TOLOverhead regenerates Fig. 6: TOL share of the host
// dynamic instruction stream (paper: 16 / 13 / 41 %).
func BenchmarkFig6TOLOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuitesB(b, benchScale)
		ov := func(r *experiments.BenchResult) float64 { return 100 * r.Res.TOLOverheadFrac() }
		suiteMetric(b, rs, workload.SuiteINT, ov, "TOL%-INT")
		suiteMetric(b, rs, workload.SuiteFP, ov, "TOL%-FP")
		suiteMetric(b, rs, workload.SuitePhysics, ov, "TOL%-Phys")
	}
}

// BenchmarkFig7OverheadBreakdown regenerates Fig. 7: the interpreter /
// BB-translator / SB-translator split of TOL overhead (averaged over all
// 31 benchmarks; remaining categories in cmd/darco-bench -exp fig7).
func BenchmarkFig7OverheadBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuitesB(b, benchScale)
		fig := experiments.Fig7(rs)
		// Aggregate across the three suite-average rows.
		var interp, bbt, sbt float64
		for _, r := range fig.Avgs {
			interp += r.Values[0]
			bbt += r.Values[1]
			sbt += r.Values[2]
		}
		n := float64(len(fig.Avgs))
		b.ReportMetric(interp/n, "interp%")
		b.ReportMetric(bbt/n, "bbtrans%")
		b.ReportMetric(sbt/n, "sbtrans%")
	}
}

// BenchmarkCaseStudyWarmup regenerates the §VI-E case study: the warm-up
// methodology's simulation-cost reduction and error (paper: 65x at 0.75%
// on full SPEC-length runs; shorter synthetic runs amortise less).
func BenchmarkCaseStudyWarmup(b *testing.B) {
	p, _ := workload.ByName("462.libquantum")
	im, err := workload.CachedImage(p.Scale(0.4))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st, err := warmup.RunStudy(im, warmup.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Chosen.Reduction, "cost-reduction-x")
		b.ReportMetric(st.Chosen.ErrorPct, "error-%")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// ablationRun reports (host app instructions, TOL overhead) for 429.mcf
// under a config mutation.
func ablationRun(b *testing.B, mutate func(*darco.Config)) (app, overhead uint64) {
	b.Helper()
	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(0.25))
	if err != nil {
		b.Fatal(err)
	}
	cfg := darco.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	res := benchRun(b, im, cfg)
	return res.HostAppInsns, res.Overhead.Total()
}

// BenchmarkAblationEagerFlags quantifies lazy flag materialization: the
// extra host instructions when every flag is computed eagerly.
func BenchmarkAblationEagerFlags(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, _ := ablationRun(b, nil)
		eager, _ := ablationRun(b, func(c *darco.Config) { c.TOL.EagerFlags = true })
		b.ReportMetric(float64(eager)/float64(base), "app-insn-ratio")
	}
}

// BenchmarkAblationNoAsserts compares single-exit (asserts + rollback)
// superblocks against multi-exit superblocks.
func BenchmarkAblationNoAsserts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, _ := ablationRun(b, nil)
		multi, _ := ablationRun(b, func(c *darco.Config) { c.TOL.SB.NoAsserts = true })
		b.ReportMetric(float64(multi)/float64(base), "app-insn-ratio")
	}
}

// BenchmarkAblationNoChaining measures the dispatch overhead chaining
// and the IBTC remove.
func BenchmarkAblationNoChaining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, base := ablationRun(b, nil)
		_, noChain := ablationRun(b, func(c *darco.Config) { c.TOL.DisableChaining = true })
		b.ReportMetric(float64(noChain)/float64(base), "overhead-ratio")
	}
}

// BenchmarkAblationNoUnroll disables single-BB loop unrolling.
func BenchmarkAblationNoUnroll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, _ := ablationRun(b, nil)
		noUnroll, _ := ablationRun(b, func(c *darco.Config) { c.TOL.SB.UnrollFactor = 1 })
		b.ReportMetric(float64(noUnroll)/float64(base), "app-insn-ratio")
	}
}

// BenchmarkAblationNoMemSpec disables speculative memory reordering.
func BenchmarkAblationNoMemSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, _ := ablationRun(b, nil)
		noSpec, _ := ablationRun(b, func(c *darco.Config) { c.TOL.SB.MaxSpecLoads = 0 })
		b.ReportMetric(float64(noSpec)/float64(base), "app-insn-ratio")
	}
}

// BenchmarkAblationThresholds sweeps the superblock promotion threshold
// (the startup-delay vs optimization-coverage trade-off of §III).
func BenchmarkAblationThresholds(b *testing.B) {
	for _, thresh := range []uint64{50, 300, 2000} {
		thresh := thresh
		b.Run(benchName(thresh), func(b *testing.B) {
			p, _ := workload.ByName("429.mcf")
			im, err := workload.CachedImage(p.Scale(0.25))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cfg := darco.DefaultConfig()
				cfg.TOL.SBThreshold = thresh
				res := benchRun(b, im, cfg)
				_, _, sbm := res.ModeShares()
				b.ReportMetric(100*sbm, "SBM%")
				b.ReportMetric(100*res.TOLOverheadFrac(), "TOL%")
			}
		})
	}
}

func benchName(t uint64) string {
	switch t {
	case 50:
		return "sb50"
	case 300:
		return "sb300"
	default:
		return "sb2000"
	}
}
