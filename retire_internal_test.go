package darco

import (
	"testing"

	"darco/internal/timing"
	"darco/internal/workload"
)

// TestRetireHookZeroCostWithoutSubscriber pins the acceptance property
// behind BenchmarkTableSpeedFunctional: a session with no retire
// subscriber must leave the VM's retire slot exactly what the timing
// configuration dictates — nil on the functional stack, the timing
// consumer alone with a simulator attached — so the retirement fast
// path never materializes events.
func TestRetireHookZeroCostWithoutSubscriber(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	if ses.ctl.CoD.VM.Retire != nil {
		t.Error("functional session has a retire consumer without a subscriber")
	}
	if ses.ctl.Cfg.OnExcursion != nil || ses.ctl.Cfg.OnSync != nil {
		t.Error("controller hooks installed without an observer or subscriber")
	}

	// Subscribing installs the hooks; unsubscribing restores the fast
	// path.
	cancel := ses.SubscribeRetires(func(RetireBatch) {})
	if ses.ctl.CoD.VM.Retire == nil || ses.ctl.Cfg.OnExcursion == nil || ses.ctl.Cfg.OnSync == nil {
		t.Error("subscription did not install the retire hooks")
	}
	cancel()
	if ses.ctl.CoD.VM.Retire != nil || ses.ctl.Cfg.OnExcursion != nil || ses.ctl.Cfg.OnSync != nil {
		t.Error("unsubscribe did not restore the no-consumer fast path")
	}

	// With a timing simulator the retire slot is the consumer itself,
	// not a tee wrapper (TeeRetire returns a single live sink
	// unwrapped); nothing observable distinguishes it from the
	// pre-stream wiring.
	tEng, err := NewEngine(WithTiming(timing.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	tSes, err := tEng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	if tSes.ctl.CoD.VM.Retire == nil {
		t.Error("timing session lost its retire consumer")
	}
	if tSes.ctl.Cfg.OnExcursion != nil {
		t.Error("timing-only session installed the stream flush hook")
	}
}
