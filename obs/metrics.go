// Package obs is the observability layer shared by every tier of the
// DARCO stack: a Prometheus-exposition metrics registry (counters,
// gauges, fixed-bucket histograms), a lightweight tracing span model
// with HTTP context propagation, and the atomic hot-path profiling
// counters the engine exposes behind darco.WithObsCounters.
//
// The package deliberately imports nothing from the rest of the module
// so that every tier — engine internals, the store WAL, the serve
// daemon, the sched coordinator — can depend on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry owns a set of metric families and renders them as
// Prometheus text exposition (version 0.0.4). Families are rendered in
// registration order and their samples in creation order, so a scrape's
// byte layout is stable — the daemon smoke tests grep for exact lines.
//
// Registration (Counter, Gauge, ...) panics on an invalid or duplicate
// family name: those are programmer errors, caught by the first scrape
// of any test. Sample updates (Add, Set, Observe) are lock-free and
// safe from any goroutine.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ContentType is the HTTP Content-Type for WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// family is one metric family: a name, a type, and its samples.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu    sync.Mutex
	order []*sample
	byKey map[string]*sample
}

// sample is one time series of a family. Exactly one of the value
// fields is live, picked by the family type.
type sample struct {
	labelVals []string
	ctr       atomic.Uint64 // counter: integral monotone count
	bits      atomic.Uint64 // gauge: float64 bits
	hist      *Histogram    // histogram
}

func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, byKey: make(map[string]*sample)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func (f *family) get(values []string) *sample {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &sample{labelVals: append([]string(nil), values...)}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter registers an unlabelled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers a labelled counter family; With materializes a
// series per label-value tuple on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// Gauge registers an unlabelled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels)}
}

// Histogram registers an unlabelled histogram family with the given
// upper bucket bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram adopts an externally constructed histogram into
// the registry — the pattern for instrumentation that lives below the
// daemon (the store's append/fsync latency, the timing pipeline's
// batch occupancy) yet must surface on its /metrics.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	f := r.register(name, help, "histogram", nil)
	f.get(nil).hist = h
}

// OnScrape registers fn to run at the top of every WritePrometheus
// call, under the registry lock. Gauges derived from live state (queue
// depth, jobs by state) are refreshed here instead of on every
// mutation.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Counter is a monotonically increasing integral count.
type Counter struct{ s *sample }

// Inc adds one.
func (c *Counter) Inc() { c.s.ctr.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.s.ctr.Add(delta) }

// Set overwrites the count — for families whose total is recomputed
// from authoritative state at scrape time (an OnScrape hook) rather
// than counted event by event.
func (c *Counter) Set(v uint64) { c.s.ctr.Store(v) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.s.ctr.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use. The returned Counter is cacheable.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.get(values)}
}

// Gauge is a float64 value that can go up and down.
type Gauge struct{ s *sample }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.get(values)}
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free (atomic adds), so it is safe from hot paths and from many
// goroutines; buckets are fixed at construction, so there is no
// resizing and no allocation after NewHistogram.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given upper
// bucket bounds (sorted and deduplicated; the +Inf bucket is
// implicit). Use Registry.RegisterHistogram to expose it.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	out := b[:0]
	for i, v := range b {
		if math.IsInf(v, +1) || math.IsNaN(v) {
			continue
		}
		if i > 0 && len(out) > 0 && v == out[len(out)-1] {
			continue
		}
		out = append(out, v)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Uint64, len(out)+1)}
}

// ExpBuckets returns count bounds growing geometrically from start by
// factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns count bounds from start in steps of width —
// for bounded integral distributions like batch occupancy.
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // per bucket; last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Quantile estimates the q-quantile of the observed distribution from
// the bucket counts, interpolating linearly inside the containing
// bucket (the Prometheus histogram_quantile estimate). It is
// zero-value-safe: an empty histogram returns 0 for any q, and q is
// clamped into [0, 1]. Observations that landed in the +Inf bucket cap
// the estimate at the highest finite bound; a histogram whose every
// observation overflowed returns the mean (sum/count) as the best
// remaining estimate.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile is Histogram.Quantile over a captured snapshot, so one
// consistent cut can answer several quantiles.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the estimate saturates at the highest finite
			// bound; with no finite bucket at all, fall back to the mean.
			if len(s.Bounds) == 0 {
				return s.Sum / float64(s.Count)
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		if cum+float64(c) >= rank {
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum += float64(c)
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// WritePrometheus renders every family as Prometheus text exposition
// (content type "text/plain; version=0.0.4"), running the OnScrape
// hooks first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.hooks {
		fn()
	}
	var b strings.Builder
	for _, f := range r.fams {
		f.mu.Lock()
		order := append([]*sample(nil), f.order...)
		f.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range order {
			switch f.typ {
			case "counter":
				b.WriteString(f.name)
				writeLabels(&b, f.labels, s.labelVals, "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.ctr.Load(), 10))
				b.WriteByte('\n')
			case "gauge":
				b.WriteString(f.name)
				writeLabels(&b, f.labels, s.labelVals, "")
				b.WriteByte(' ')
				b.WriteString(formatValue(math.Float64frombits(s.bits.Load())))
				b.WriteByte('\n')
			case "histogram":
				snap := s.hist.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatValue(snap.Bounds[i])
					}
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, f.labels, s.labelVals, le)
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, f.labels, s.labelVals, "")
				b.WriteByte(' ')
				b.WriteString(formatValue(snap.Sum))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, f.labels, s.labelVals, "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(snap.Count, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders a {k="v",...} block; le, when non-empty, is
// appended as the histogram bucket bound label.
func writeLabels(b *strings.Builder, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
