package obs

import (
	"math"
	"sync"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// The zero-value snapshot (no bounds, no counts) is just as safe.
	var s HistogramSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("zero snapshot Quantile = %v, want 0", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for range 10 {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("Quantile(0.5) = %v, want 10 (bucket boundary)", got)
	}
	if got := h.Quantile(0.25); got != 5 {
		t.Fatalf("Quantile(0.25) = %v, want 5 (mid first bucket)", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) = %v, want 20", got)
	}
	if got := h.Quantile(0); math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("Quantile(0) = %v, want within first bucket's first rank", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100) // lands in +Inf
	h.Observe(0.5)
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("Quantile into +Inf bucket = %v, want cap at highest finite bound 1", got)
	}
	// Every observation overflowed and there is no finite bound at all:
	// fall back to the mean.
	h2 := NewHistogram(nil)
	h2.Observe(4)
	h2.Observe(8)
	if got := h2.Quantile(0.5); got != 6 {
		t.Fatalf("boundless Quantile = %v, want mean 6", got)
	}
	// Clamp out-of-range and NaN q instead of panicking.
	if got := h.Quantile(math.NaN()); math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = NaN, want clamped estimate")
	}
	if got := h.Quantile(2); got != 1 {
		t.Fatalf("Quantile(2) = %v, want clamp to Quantile(1)", got)
	}
}

func TestQuantileConcurrentUpdates(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 2, 16))
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers race quantile estimation against live observation; the
	// estimate must stay inside the observed support and the race
	// detector must stay quiet.
	for range 4 {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := h.Quantile(0.9)
				if math.IsNaN(q) || q < 0 {
					t.Errorf("mid-update Quantile = %v", q)
					return
				}
			}
		}()
	}
	for range 4 {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := range 5000 {
				h.Observe(float64(i%100) / 100)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got, want := h.Snapshot().Count, uint64(20000); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1.024 {
		t.Fatalf("settled Quantile(0.5) = %v, want within observed support", q)
	}
}
