package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("darco_things_total", "Things seen.")
	c.Add(3)
	c.Inc()
	g := r.Gauge("darco_depth", "Queue depth.")
	g.Set(7)
	v := r.GaugeVec("darco_jobs", "Jobs by state.", "state")
	v.With("queued").Set(2)
	v.With("running").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP darco_things_total Things seen.\n",
		"# TYPE darco_things_total counter\n",
		"darco_things_total 4\n",
		"# TYPE darco_depth gauge\n",
		"darco_depth 7\n",
		`darco_jobs{state="queued"} 2` + "\n",
		`darco_jobs{state="running"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecSeriesOrderStable(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("darco_jobs", "Jobs by state.", "state")
	states := []string{"queued", "running", "done", "failed"}
	for _, s := range states {
		v.With(s).Set(0)
	}
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	v.With("running").Set(5) // touching a series must not reorder it
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	idx := func(out, state string) int { return strings.Index(out, `{state="`+state+`"}`) }
	for i := 1; i < len(states); i++ {
		if idx(b2.String(), states[i-1]) > idx(b2.String(), states[i]) {
			t.Fatalf("series order changed:\n%s", b2.String())
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("darco_wait_seconds", "Queue wait.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE darco_wait_seconds histogram\n",
		`darco_wait_seconds_bucket{le="0.1"} 1` + "\n",
		`darco_wait_seconds_bucket{le="1"} 2` + "\n",
		`darco_wait_seconds_bucket{le="10"} 2` + "\n",
		`darco_wait_seconds_bucket{le="+Inf"} 3` + "\n",
		"darco_wait_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	snap := h.Snapshot()
	if snap.Count != 3 || math.Abs(snap.Sum-100.55) > 1e-9 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(2.0000001)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 0 || s.Counts[2] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("darco_live", "Recomputed at scrape.")
	n := 0
	r.OnScrape(func() { n++; g.Set(float64(n)) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "darco_live 2\n") {
		t.Fatalf("hook did not run per scrape:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("darco_w", "", "worker").With(`http://a"b\c`).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `darco_w{worker="http://a\"b\\c"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("want %q in:\n%s", want, b.String())
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "")
	for name, fn := range map[string]func(){
		"duplicate": func() { r.Counter("ok_name", "") },
		"bad name":  func() { r.Counter("0bad", "") },
		"bad label": func() { r.CounterVec("ok2", "", "0bad") },
		"arity":     func() { r.GaugeVec("ok3", "", "a").With("x", "y").Set(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("darco_n_total", "")
	h := r.Histogram("darco_h", "", ExpBuckets(0.001, 10, 4))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("histogram count = %d", s.Count)
	}
}

func TestEngineCountersSnapshot(t *testing.T) {
	var c EngineCounters
	c.DecodeHits.Add(9)
	c.DecodeMisses.Add(1)
	c.BlockHits.Add(3)
	c.BlockMisses.Add(1)
	s := c.Snapshot()
	if got := s.DecodeHitRate(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("decode hit rate = %g", got)
	}
	if got := s.BlockHitRate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("block hit rate = %g", got)
	}
	d := s.Sub(EngineCountersSnapshot{DecodeHits: 4})
	if d.DecodeHits != 5 {
		t.Fatalf("sub = %+v", d)
	}
}
