package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceIDs(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	if len(tr) != 32 || len(sp) != 16 {
		t.Fatalf("id lengths: trace %d span %d", len(tr), len(sp))
	}
	if tr == NewTraceID() {
		t.Fatal("trace ids collide")
	}
	if !isHexID(tr) || !isHexID(sp) {
		t.Fatal("ids are not hex")
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	h := http.Header{}
	InjectTrace(h, "abc123", "def456")
	tr, parent, ok := ExtractTrace(h)
	if !ok || tr != "abc123" || parent != "def456" {
		t.Fatalf("extract = %q %q %v", tr, parent, ok)
	}

	for _, bad := range []string{"", "nothex!/aa", "abc/zz!", strings.Repeat("a", 65) + "/bb"} {
		h := http.Header{}
		if bad != "" {
			h.Set(TraceHeader, bad)
		}
		if _, _, ok := ExtractTrace(h); ok {
			t.Errorf("extract accepted %q", bad)
		}
	}

	// Empty parent is legal: a root submission carrying only a trace id.
	h = http.Header{}
	h.Set(TraceHeader, "abc123/")
	if tr, parent, ok := ExtractTrace(h); !ok || tr != "abc123" || parent != "" {
		t.Fatalf("rootless extract = %q %q %v", tr, parent, ok)
	}
}

func TestBuildTree(t *testing.T) {
	base := time.Now()
	mk := func(id, parent, name string, off time.Duration) Span {
		s := NewSpan("t1", parent, name, "serve", base.Add(off), base.Add(off+time.Second))
		s.SpanID = id
		return s
	}
	spans := []Span{
		mk("job", "", "job", 0),
		mk("s2", "job", "scenario-b", 2*time.Second),
		mk("s1", "job", "scenario-a", 1*time.Second),
		mk("p1", "s1", "emulate", 1*time.Second),
		mk("orphan", "gone", "shard", 0),
		mk("s1", "job", "dup", 1*time.Second), // duplicate id dropped
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (job + orphan)", len(roots))
	}
	var job *SpanNode
	for _, r := range roots {
		if r.SpanID == "job" {
			job = r
		}
	}
	if job == nil || len(job.Children) != 2 {
		t.Fatalf("job children = %+v", job)
	}
	if job.Children[0].Name != "scenario-a" || job.Children[1].Name != "scenario-b" {
		t.Fatalf("children unsorted: %s, %s", job.Children[0].Name, job.Children[1].Name)
	}
	if len(job.Children[0].Children) != 1 || job.Children[0].Children[0].Name != "emulate" {
		t.Fatalf("grandchildren wrong: %+v", job.Children[0].Children)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	base := time.Unix(1000, 0)
	spans := []Span{
		NewSpan("t1", "", "job", "sched", base, base.Add(4*time.Second)),
		NewSpan("t1", "", "scenario", "serve", base.Add(time.Second), base.Add(2*time.Second)),
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.Name != "job" || ev.Dur != 4e6 {
		t.Fatalf("event = %+v", ev)
	}
	if doc.TraceEvents[0].Tid == doc.TraceEvents[1].Tid {
		t.Fatal("distinct services share a tid lane")
	}
	if ev.Args["trace_id"] != "t1" {
		t.Fatalf("args = %v", ev.Args)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := NewSpan("t1", "p1", "shard-0", "sched", time.Unix(5, 0), time.Unix(6, 0))
	s.SetAttr("worker", "http://a:1")
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Span
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "t1" || got.Parent != "p1" || got.Attrs["worker"] != "http://a:1" {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Duration() != time.Second {
		t.Fatalf("duration = %s", got.Duration())
	}
}
