package obs

import (
	"sync"
	"testing"
)

func TestEngineCountersDeltaAndReset(t *testing.T) {
	c := &EngineCounters{}
	c.DecodeHits.Add(10)
	c.BlockMisses.Add(3)
	before := c.Snapshot()

	c.DecodeHits.Add(5)
	c.PipelinePushes.Add(7)
	d := c.Delta(before)
	if d.DecodeHits != 5 || d.PipelinePushes != 7 || d.BlockMisses != 0 {
		t.Fatalf("Delta = %+v, want DecodeHits=5 PipelinePushes=7 BlockMisses=0", d)
	}

	c.Reset()
	if got := c.Snapshot(); got != (EngineCountersSnapshot{}) {
		t.Fatalf("after Reset: %+v, want zero", got)
	}
}

func TestEngineCountersEqualDeterministic(t *testing.T) {
	a := EngineCountersSnapshot{DecodeHits: 1, BlockHits: 2, PipelineFlushes: 3, PipelineStalls: 9}
	b := a
	b.PipelineStalls = 0 // scheduling-dependent: must not break equality
	if !a.EqualDeterministic(b) {
		t.Fatal("stall drift broke deterministic equality")
	}
	b.PipelineFlushes++
	if a.EqualDeterministic(b) {
		t.Fatal("flush drift went undetected")
	}
}

func TestEngineCountersConcurrentDelta(t *testing.T) {
	c := &EngineCounters{}
	base := c.Snapshot()
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.DecodeHits.Add(1)
				c.PipelinePushes.Add(2)
			}
		}()
	}
	wg.Wait()
	d := c.Delta(base)
	if d.DecodeHits != 8000 || d.PipelinePushes != 16000 {
		t.Fatalf("concurrent delta = %+v, want 8000/16000", d)
	}
}
