package obs

import "sync/atomic"

// EngineCounters are the engine's hot-path profiling counters,
// attached with darco.WithObsCounters. Every field is a plain atomic:
// the enabled cost is one predictable nil-check plus one uncontended
// atomic add on the instrumented paths, and the disabled cost is the
// nil-check alone (pinned by BenchmarkTableSpeedFunctional against the
// BENCH_4 snapshot).
//
// One EngineCounters may be shared across engines and sessions — the
// serve daemon attaches a single instance to every obs-enabled job so
// /metrics reads fleet-wide totals — or allocated per run, as
// darco-bench -obs does for a per-scenario column.
type EngineCounters struct {
	// Decode cache: per-page predecoded guest instructions. A miss
	// decodes the x86 instruction from guest memory.
	DecodeHits   atomic.Uint64
	DecodeMisses atomic.Uint64

	// Block cache: translated-region lookups in the TOL dispatch loop.
	// A miss falls back to interpretation (and eventually translation).
	BlockHits   atomic.Uint64
	BlockMisses atomic.Uint64

	// Code cache flushes: capacity evictions that drop every
	// translation at once (the paper's flush-and-refill discipline).
	CodeFlushes atomic.Uint64

	// Timing pipeline: events pushed to the drain goroutine, batches
	// handed over, and flushes that found the window full (the
	// emulator blocked on timing back-pressure).
	PipelinePushes  atomic.Uint64
	PipelineFlushes atomic.Uint64
	PipelineStalls  atomic.Uint64

	// Optional distribution sinks, set by the owner before the first
	// run (nil = not recorded). BatchOccupancy observes events per
	// flushed batch; BarrierStall observes seconds the emulator spent
	// blocked at synchronization barriers.
	BatchOccupancy *Histogram
	BarrierStall   *Histogram
}

// EngineCountersSnapshot is a plain copy of the counter values, the
// form Result.Obs carries and darco-bench prints.
type EngineCountersSnapshot struct {
	DecodeHits      uint64 `json:"decode_hits"`
	DecodeMisses    uint64 `json:"decode_misses"`
	BlockHits       uint64 `json:"block_hits"`
	BlockMisses     uint64 `json:"block_misses"`
	CodeFlushes     uint64 `json:"code_flushes"`
	PipelinePushes  uint64 `json:"pipeline_pushes"`
	PipelineFlushes uint64 `json:"pipeline_flushes"`
	PipelineStalls  uint64 `json:"pipeline_stalls"`
}

// Snapshot reads the counters. Values are individually atomic, not a
// consistent cut — fine for monitoring, meaningless to diff mid-run.
func (c *EngineCounters) Snapshot() EngineCountersSnapshot {
	return EngineCountersSnapshot{
		DecodeHits:      c.DecodeHits.Load(),
		DecodeMisses:    c.DecodeMisses.Load(),
		BlockHits:       c.BlockHits.Load(),
		BlockMisses:     c.BlockMisses.Load(),
		CodeFlushes:     c.CodeFlushes.Load(),
		PipelinePushes:  c.PipelinePushes.Load(),
		PipelineFlushes: c.PipelineFlushes.Load(),
		PipelineStalls:  c.PipelineStalls.Load(),
	}
}

// Delta is shorthand for c.Snapshot().Sub(prev): the counter movement
// since a previous snapshot. The paired A/B perf harness brackets each
// measured repetition with Snapshot/Delta to attribute cache and
// pipeline traffic to exactly that repetition even when the counters
// instance is shared across runs.
func (c *EngineCounters) Delta(prev EngineCountersSnapshot) EngineCountersSnapshot {
	return c.Snapshot().Sub(prev)
}

// Reset zeroes every counter. Only safe between runs — concurrent
// updates during a reset land unpredictably on either side of it.
func (c *EngineCounters) Reset() {
	c.DecodeHits.Store(0)
	c.DecodeMisses.Store(0)
	c.BlockHits.Store(0)
	c.BlockMisses.Store(0)
	c.CodeFlushes.Store(0)
	c.PipelinePushes.Store(0)
	c.PipelineFlushes.Store(0)
	c.PipelineStalls.Store(0)
}

// Sub returns the delta s - prev, for per-phase attribution when one
// counters instance spans several runs.
func (s EngineCountersSnapshot) Sub(prev EngineCountersSnapshot) EngineCountersSnapshot {
	return EngineCountersSnapshot{
		DecodeHits:      s.DecodeHits - prev.DecodeHits,
		DecodeMisses:    s.DecodeMisses - prev.DecodeMisses,
		BlockHits:       s.BlockHits - prev.BlockHits,
		BlockMisses:     s.BlockMisses - prev.BlockMisses,
		CodeFlushes:     s.CodeFlushes - prev.CodeFlushes,
		PipelinePushes:  s.PipelinePushes - prev.PipelinePushes,
		PipelineFlushes: s.PipelineFlushes - prev.PipelineFlushes,
		PipelineStalls:  s.PipelineStalls - prev.PipelineStalls,
	}
}

// EqualDeterministic reports whether the machine-independent counters
// match: everything except PipelineStalls, which counts the emulator
// blocking on timing back-pressure and therefore depends on scheduler
// timing, not on the code under test. The perf regression gate
// compares snapshots field-exactly through this predicate.
func (s EngineCountersSnapshot) EqualDeterministic(o EngineCountersSnapshot) bool {
	return s.DecodeHits == o.DecodeHits &&
		s.DecodeMisses == o.DecodeMisses &&
		s.BlockHits == o.BlockHits &&
		s.BlockMisses == o.BlockMisses &&
		s.CodeFlushes == o.CodeFlushes &&
		s.PipelinePushes == o.PipelinePushes &&
		s.PipelineFlushes == o.PipelineFlushes
}

// DecodeHitRate is hits/(hits+misses), 0 when no lookups happened.
func (s EngineCountersSnapshot) DecodeHitRate() float64 {
	return rate(s.DecodeHits, s.DecodeMisses)
}

// BlockHitRate is hits/(hits+misses), 0 when no lookups happened.
func (s EngineCountersSnapshot) BlockHitRate() float64 {
	return rate(s.BlockHits, s.BlockMisses)
}

func rate(hit, miss uint64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}
