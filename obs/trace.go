package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Span is one timed operation in a trace: a job, a shard, a scenario,
// or an execution phase. Spans form a tree through Parent; a federated
// job's spans stitch across the coordinator and its workers because
// they share TraceID — the coordinator propagates it on shard
// submission through the TraceHeader.
//
// Times are UTC unix nanoseconds so spans journal as plain JSON and
// compare across machines without timezone baggage.
type Span struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	Service string            `json:"service,omitempty"` // emitting tier: "serve", "sched"
	Start   int64             `json:"start_unix_ns"`
	End     int64             `json:"end_unix_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// NewSpan builds a finished span over [start, end].
func NewSpan(traceID, parent, name, service string, start, end time.Time) Span {
	return Span{
		TraceID: traceID,
		SpanID:  NewSpanID(),
		Parent:  parent,
		Name:    name,
		Service: service,
		Start:   start.UnixNano(),
		End:     end.UnixNano(),
	}
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// SetAttr sets one attribute, allocating the map on first use.
func (s *Span) SetAttr(k, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// NewTraceID returns a 32-hex-digit random trace identifier.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a 16-hex-digit random span identifier.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("obs: crypto/rand failed: %v", err)) // never on supported platforms
	}
	return hex.EncodeToString(b)
}

// TraceHeader carries trace context on HTTP requests between tiers as
// "<trace-id>/<parent-span-id>": the sched coordinator injects it on
// shard submissions so the worker's spans join the federated job's
// trace instead of starting their own.
const TraceHeader = "X-Darco-Trace"

// InjectTrace stamps trace context onto an outgoing request's headers.
func InjectTrace(h http.Header, traceID, parentSpanID string) {
	if traceID == "" {
		return
	}
	h.Set(TraceHeader, traceID+"/"+parentSpanID)
}

// ExtractTrace reads trace context from incoming headers. ok is false
// when the header is absent or malformed (malformed context is dropped
// rather than poisoning the job's trace with unparseable IDs).
func ExtractTrace(h http.Header) (traceID, parentSpanID string, ok bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return "", "", false
	}
	traceID, parentSpanID, _ = strings.Cut(v, "/")
	if !isHexID(traceID) || (parentSpanID != "" && !isHexID(parentSpanID)) {
		return "", "", false
	}
	return traceID, parentSpanID, true
}

func isHexID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// SpanNode is a span with its children resolved — one node of the
// trace tree a daemon returns from GET /api/v1/jobs/{id}/trace.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildTree assembles spans into parent→child trees. Spans whose
// parent is not present (the parent belongs to another tier that was
// unreachable, or was never recorded because that tier crashed) become
// roots — a partial trace renders rather than vanishing. Siblings are
// ordered by start time, then name.
func BuildTree(spans []Span) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, s := range spans {
		if _, dup := nodes[s.SpanID]; dup {
			continue // same span journaled and fetched — keep one
		}
		n := &SpanNode{Span: s}
		nodes[s.SpanID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Start != ns[j].Start {
			return ns[i].Start < ns[j].Start
		}
		return ns[i].Name < ns[j].Name
	})
}

// chromeEvent is one complete ("ph":"X") event of the Chrome
// trace-event format, the JSON that chrome://tracing and Perfetto load
// directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document
// ({"traceEvents": [...]}) loadable in Perfetto. Each emitting service
// maps to its own thread lane so coordinator and worker spans stack
// separately; timestamps are absolute microseconds.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	tids := map[string]int{}
	events := make([]chromeEvent, 0, len(spans))
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for _, s := range sorted {
		svc := s.Service
		if svc == "" {
			svc = "darco"
		}
		tid, ok := tids[svc]
		if !ok {
			tid = len(tids) + 1
			tids[svc] = tid
		}
		args := make(map[string]string, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		args["trace_id"] = s.TraceID
		args["span_id"] = s.SpanID
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  svc,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// TraceDoc is the JSON document GET /api/v1/jobs/{id}/trace returns:
// the flat span list (the canonical merge format — the coordinator
// concatenates its own spans with each worker's) plus the resolved
// tree for human eyes.
type TraceDoc struct {
	TraceID string      `json:"trace_id"`
	Job     string      `json:"job"`
	Spans   []Span      `json:"spans"`
	Tree    []*SpanNode `json:"tree"`
}
