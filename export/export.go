// Package export turns campaign results into downstream-consumable
// artifacts: versioned JSON, CSV, and a self-contained static HTML
// dashboard reproducing the paper's speed/overhead figures.
//
// Exports are deterministic by default: rows appear in the campaign's
// scenario order and carry only counters the emulation reproduces
// bit-identically, so a campaign run serially and one run on a full
// worker pool export byte-identical documents. Wall-clock metrics
// (wall time, MIPS) are machine- and run-dependent and are only
// included under WithWallTimes.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	darco "darco"
	"darco/internal/tol"
)

// SchemaVersion identifies the JSON document layout. Consumers should
// reject schemas they do not know; additive changes (new fields) do
// not bump it, renames and semantic changes do.
const SchemaVersion = 1

// Option configures an export.
type Option func(*config)

type config struct {
	wallTimes bool
}

// WithWallTimes includes wall-clock metrics (per-scenario wall time,
// guest/host MIPS, campaign wall and parallelism). These vary run to
// run, so documents exported with this option are not byte-comparable.
func WithWallTimes() Option {
	return func(c *config) { c.wallTimes = true }
}

func newConfig(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// overheadCats is the canonical category order for overhead columns,
// with stable machine-readable slugs (the display names live in
// tol.OverheadCat.String).
var overheadCats = []struct {
	cat  tol.OverheadCat
	slug string
}{
	{tol.OvInterp, "interp"},
	{tol.OvBBTrans, "bb_trans"},
	{tol.OvSBTrans, "sb_trans"},
	{tol.OvPrologue, "prologue"},
	{tol.OvChaining, "chaining"},
	{tol.OvLookup, "lookup"},
	{tol.OvOther, "other"},
}

// Row is one scenario flattened to the deterministic counters the
// paper's figures are built from. Failed scenarios carry their error
// and zero counters.
type Row struct {
	Scenario string  `json:"scenario"`
	Suite    string  `json:"suite"`
	Scale    float64 `json:"scale"`
	Error    string  `json:"error,omitempty"`

	GuestInsns   uint64  `json:"guest_insns"`
	IMPct        float64 `json:"im_pct"`
	BBMPct       float64 `json:"bbm_pct"`
	SBMPct       float64 `json:"sbm_pct"`
	HostAppInsns uint64  `json:"host_app_insns"`
	TOLInsns     uint64  `json:"tol_insns"`
	TOLPct       float64 `json:"tol_pct"`
	SBMCost      float64 `json:"sbm_cost"`

	BBTranslations uint64 `json:"bb_translations"`
	SBTranslations uint64 `json:"sb_translations"`
	UnrolledLoops  uint64 `json:"unrolled_loops"`
	AssertRebuilds uint64 `json:"assert_rebuilds"`
	SpecRebuilds   uint64 `json:"spec_rebuilds"`
	Dispatches     uint64 `json:"dispatches"`
	Validations    uint64 `json:"validations"`
	PageTransfers  uint64 `json:"page_transfers"`
	SyscallSyncs   uint64 `json:"syscall_syncs"`
	ExitCode       int32  `json:"exit_code"`

	// Overhead is the Fig. 7 breakdown in host instructions, keyed by
	// the canonical category slugs (interp, bb_trans, ...).
	Overhead map[string]uint64 `json:"overhead"`

	// Timing-simulator results; zero when no simulator was attached.
	Cycles uint64  `json:"cycles,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`

	// Wall-clock metrics, populated only under WithWallTimes.
	WallMS    float64 `json:"wall_ms,omitempty"`
	GuestMIPS float64 `json:"guest_mips,omitempty"`
	HostMIPS  float64 `json:"host_mips,omitempty"`
}

// Report is the versioned JSON document: one row per campaign
// scenario, in scenario order.
type Report struct {
	Schema    int     `json:"schema"`
	Generator string  `json:"generator"`
	Scenarios []Row   `json:"scenarios"`
	WallMS    float64 `json:"wall_ms,omitempty"`     // campaign wall (WithWallTimes)
	Workers   int     `json:"parallelism,omitempty"` // worker-pool width (WithWallTimes)
}

// NewRow flattens one scenario outcome. It is the single conversion
// point shared by the whole-report and streaming writers, so every
// export format agrees on field semantics.
func NewRow(sr *darco.ScenarioResult, opts ...Option) Row {
	cfg := newConfig(opts)
	return newRow(sr, &cfg)
}

func newRow(sr *darco.ScenarioResult, cfg *config) Row {
	scale := sr.Scenario.Scale
	if scale == 0 {
		scale = 1
	}
	name := sr.Scenario.Name
	if name == "" {
		name = sr.Scenario.Profile.Name
	}
	row := Row{
		Scenario: name,
		Suite:    sr.Scenario.Profile.Suite,
		Scale:    scale,
		Overhead: make(map[string]uint64, len(overheadCats)),
	}
	if sr.Err != nil {
		row.Error = sr.Err.Error()
	}
	if cfg.wallTimes {
		row.WallMS = float64(sr.Wall.Nanoseconds()) / 1e6
	}
	res := sr.Result
	if res == nil {
		for _, oc := range overheadCats {
			row.Overhead[oc.slug] = 0
		}
		return row
	}
	im, bbm, sbm := res.ModeShares()
	row.GuestInsns = res.Stats.GuestInsns()
	row.IMPct = round2(100 * im)
	row.BBMPct = round2(100 * bbm)
	row.SBMPct = round2(100 * sbm)
	row.HostAppInsns = res.HostAppInsns
	row.TOLInsns = res.Overhead.Total()
	row.TOLPct = round2(100 * res.TOLOverheadFrac())
	row.SBMCost = round2(res.EmulationCostSBM())
	row.BBTranslations = res.Stats.BBTranslations
	row.SBTranslations = res.Stats.SBTranslations
	row.UnrolledLoops = res.Stats.UnrolledLoops
	row.AssertRebuilds = res.Stats.AssertRebuilds
	row.SpecRebuilds = res.Stats.SpecRebuilds
	row.Dispatches = res.Stats.Dispatches
	row.Validations = res.Validations
	row.PageTransfers = res.PageTransfers
	row.SyscallSyncs = res.SyscallSyncs
	row.ExitCode = res.ExitCode
	for _, oc := range overheadCats {
		row.Overhead[oc.slug] = res.Overhead.Cat[oc.cat]
	}
	if res.Timing != nil {
		row.Cycles = res.Timing.Cycles
		row.IPC = round4(res.Timing.IPC())
	}
	if cfg.wallTimes {
		row.GuestMIPS = res.GuestMIPS
		row.HostMIPS = res.HostMIPS
	}
	return row
}

// Rows flattens a whole campaign report in scenario order.
func Rows(rep *darco.CampaignReport, opts ...Option) []Row {
	cfg := newConfig(opts)
	out := make([]Row, len(rep.Results))
	for i := range rep.Results {
		out[i] = newRow(&rep.Results[i], &cfg)
	}
	return out
}

// StripWallRow returns row with the wall-clock fields zeroed — the
// deterministic default view of a row built (or stored) with
// WithWallTimes. This is the one place that knows which Row fields
// are wall-dependent.
func StripWallRow(row Row) Row {
	row.WallMS = 0
	row.GuestMIPS = 0
	row.HostMIPS = 0
	return row
}

// StripWall is StripWallRow over a whole row set. A consumer that
// persists wall-inclusive rows can serve both the byte-comparable
// default export and the ?wall=1 view from the same stored encoding.
func StripWall(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i := range rows {
		out[i] = StripWallRow(rows[i])
	}
	return out
}

// NewReport builds the versioned JSON document for a campaign.
func NewReport(rep *darco.CampaignReport, opts ...Option) *Report {
	cfg := newConfig(opts)
	doc := NewRowReport(Rows(rep, opts...))
	if cfg.wallTimes {
		doc.WallMS = float64(rep.Wall.Nanoseconds()) / 1e6
		doc.Workers = rep.Parallelism
	}
	return doc
}

// NewRowReport builds the versioned JSON document around pre-flattened
// rows. Given the rows a CampaignReport would flatten to, the document
// is identical to NewReport's — this is the restore path for consumers
// (the serve daemon's durable store) that persist rows rather than
// live reports. Campaign-level wall fields are left for the caller.
func NewRowReport(rows []Row) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Generator: "darco",
		Scenarios: rows,
	}
}

// WriteReport writes an assembled Report document the way WriteJSON
// does: two-space indented with a trailing newline.
func WriteReport(w io.Writer, doc *Report) error {
	data, err := EncodeJSON(doc)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteJSON writes the campaign as an indented, versioned JSON
// document with a trailing newline.
func WriteJSON(w io.Writer, rep *darco.CampaignReport, opts ...Option) error {
	return WriteReport(w, NewReport(rep, opts...))
}

// EncodeJSON marshals v the way every darco JSON artifact is written:
// two-space indented with a trailing newline. The BENCH_<n>.json
// perf-trajectory writer shares it, so the repository's JSON outputs
// stay diff-friendly and byte-stable for identical inputs.
func EncodeJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// round2 and round4 quantize derived ratios so exports do not leak
// platform-dependent last-bit float formatting into the byte-stable
// documents.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

// ftoa formats floats for CSV deterministically.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

// csvHeader returns the CSV column list for the given options. The
// deterministic columns come first; wall-clock columns are appended
// only under WithWallTimes so default exports are byte-comparable.
func csvHeader(cfg *config) []string {
	h := []string{
		"scenario", "suite", "scale", "status",
		"guest_insns", "im_pct", "bbm_pct", "sbm_pct",
		"host_app_insns", "tol_insns", "tol_pct", "sbm_cost",
		"bb_translations", "sb_translations", "unrolled_loops",
		"assert_rebuilds", "spec_rebuilds", "dispatches",
		"validations", "page_transfers", "syscall_syncs", "exit_code",
	}
	for _, oc := range overheadCats {
		h = append(h, "ov_"+oc.slug)
	}
	h = append(h, "cycles", "ipc")
	if cfg.wallTimes {
		h = append(h, "wall_ms", "guest_mips", "host_mips")
	}
	return h
}

// csvRecord renders one row in csvHeader order.
func csvRecord(row *Row, cfg *config) []string {
	status := "ok"
	if row.Error != "" {
		status = "error: " + row.Error
	}
	rec := []string{
		row.Scenario, row.Suite, ftoa(row.Scale), status,
		itoa(row.GuestInsns), ftoa(row.IMPct), ftoa(row.BBMPct), ftoa(row.SBMPct),
		itoa(row.HostAppInsns), itoa(row.TOLInsns), ftoa(row.TOLPct), ftoa(row.SBMCost),
		itoa(row.BBTranslations), itoa(row.SBTranslations), itoa(row.UnrolledLoops),
		itoa(row.AssertRebuilds), itoa(row.SpecRebuilds), itoa(row.Dispatches),
		itoa(row.Validations), itoa(row.PageTransfers), itoa(row.SyscallSyncs),
		strconv.FormatInt(int64(row.ExitCode), 10),
	}
	for _, oc := range overheadCats {
		rec = append(rec, itoa(row.Overhead[oc.slug]))
	}
	rec = append(rec, itoa(row.Cycles), ftoa(row.IPC))
	if cfg.wallTimes {
		rec = append(rec, ftoa(row.WallMS), ftoa(row.GuestMIPS), ftoa(row.HostMIPS))
	}
	return rec
}

// WriteCSV writes the campaign as CSV: a header line, then one record
// per scenario in scenario order.
func WriteCSV(w io.Writer, rep *darco.CampaignReport, opts ...Option) error {
	return WriteCSVRows(w, Rows(rep, opts...), opts...)
}

// WriteCSVRows writes pre-flattened rows as CSV with the same header,
// quoting and column rules as WriteCSV — the options select columns
// (WithWallTimes adds the wall columns) but the row values are written
// as given.
func WriteCSVRows(w io.Writer, rows []Row, opts ...Option) error {
	cfg := newConfig(opts)
	cw := newCSVWriter(w)
	if err := cw.write(csvHeader(&cfg)); err != nil {
		return err
	}
	for i := range rows {
		if err := cw.write(csvRecord(&rows[i], &cfg)); err != nil {
			return err
		}
	}
	return nil
}

// csvWriter is a minimal RFC-4180 record writer. encoding/csv would do,
// but a local one keeps quoting rules (and therefore golden bytes)
// pinned by this package alone.
type csvWriter struct{ w io.Writer }

func newCSVWriter(w io.Writer) *csvWriter { return &csvWriter{w: w} }

func (c *csvWriter) write(fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if _, err := io.WriteString(c.w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(c.w, csvQuote(f)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, "\n")
	return err
}

// csvQuote quotes a field when it contains a comma, quote or newline.
func csvQuote(f string) string {
	needs := false
	for i := 0; i < len(f); i++ {
		switch f[i] {
		case ',', '"', '\n', '\r':
			needs = true
		}
	}
	if !needs {
		return f
	}
	out := make([]byte, 0, len(f)+2)
	out = append(out, '"')
	for i := 0; i < len(f); i++ {
		if f[i] == '"' {
			out = append(out, '"', '"')
		} else {
			out = append(out, f[i])
		}
	}
	return string(append(out, '"'))
}

// Sequencer is the row-reordering core behind every incremental export
// path: it accepts pre-flattened rows keyed by scenario index in any
// completion order and hands them to a write function strictly in
// scenario order, flushing the contiguous completed prefix as it
// grows. The streaming writers (CSVStream, NDJSONStream) are built on
// it, and the sched coordinator merges rows gathered from many worker
// daemons through it — which is why a federated campaign's exports
// come out byte-identical to a single-node run's at any sharding.
//
// A Sequencer is not goroutine-safe; callers that feed it from
// concurrent gatherers serialize Put themselves.
type Sequencer struct {
	label   string // for error messages: "csv", "ndjson", "sched"
	write   func(i int, row *Row) error
	pending []*Row
	next    int
	err     error
}

// NewSequencer prepares to sequence n rows into write, which is called
// exactly once per index in strictly increasing order.
func NewSequencer(label string, n int, write func(i int, row *Row) error) *Sequencer {
	return &Sequencer{label: label, write: write, pending: make([]*Row, n)}
}

// Put records row as scenario i's outcome and flushes the contiguous
// completed prefix. Out-of-range indices and repeats of an
// already-flushed index are ignored; a repeat of a still-pending index
// overwrites it.
func (s *Sequencer) Put(i int, row Row) {
	if s.err != nil || i < s.next || i >= len(s.pending) {
		return
	}
	s.pending[i] = &row
	for s.next < len(s.pending) && s.pending[s.next] != nil {
		if err := s.write(s.next, s.pending[s.next]); err != nil {
			s.err = err
			return
		}
		s.pending[s.next] = nil
		s.next++
	}
}

// Close reports whether every row was delivered and written.
func (s *Sequencer) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.next != len(s.pending) {
		return fmt.Errorf("export: %s stream closed after %d of %d rows", s.label, s.next, len(s.pending))
	}
	return nil
}

// rowSequencer adapts the Sequencer to the campaign-hook shape the
// streaming writers use: ScenarioResults arrive from WithScenarioDone
// and are flattened with the stream's options before sequencing.
type rowSequencer struct {
	cfg config
	seq *Sequencer
}

func newRowSequencer(format string, n int, cfg config, write func(*Row) error) *rowSequencer {
	return &rowSequencer{cfg: cfg, seq: NewSequencer(format, n, func(_ int, row *Row) error {
		return write(row)
	})}
}

func (s *rowSequencer) done(i int, sr *darco.ScenarioResult) {
	s.seq.Put(i, newRow(sr, &s.cfg))
}

func (s *rowSequencer) close() error { return s.seq.Close() }

// CSVStream writes campaign rows incrementally as scenarios finish,
// emitting records strictly in scenario order regardless of completion
// order — the bytes produced are identical at any parallelism. Use its
// Done method as the Engine.RunCampaign WithScenarioDone hook and call
// Close after the campaign returns:
//
//	stream, _ := export.NewCSVStream(os.Stdout, len(scenarios))
//	rep, _ := eng.RunCampaign(ctx, scenarios, darco.WithScenarioDone(stream.Done))
//	err := stream.Close()
type CSVStream struct {
	seq *rowSequencer
}

// NewCSVStream writes the header immediately and prepares to stream n
// scenario rows.
func NewCSVStream(w io.Writer, n int, opts ...Option) (*CSVStream, error) {
	cfg := newConfig(opts)
	cw := newCSVWriter(w)
	if err := cw.write(csvHeader(&cfg)); err != nil {
		return nil, err
	}
	s := &CSVStream{}
	s.seq = newRowSequencer("csv", n, cfg, func(row *Row) error {
		return cw.write(csvRecord(row, &cfg))
	})
	return s, nil
}

// Done records scenario i's outcome and flushes the contiguous
// completed prefix. It matches the WithScenarioDone hook signature;
// RunCampaign serializes calls, so Done needs no locking of its own.
func (s *CSVStream) Done(i int, sr *darco.ScenarioResult) { s.seq.done(i, sr) }

// Close reports whether every row was delivered and written.
func (s *CSVStream) Close() error { return s.seq.close() }

// WriteNDJSONRow writes one row as a compact single-line JSON object
// with a trailing newline — the NDJSON framing shared by WriteNDJSON,
// NDJSONStream and the serve daemon's live row events.
func WriteNDJSONRow(w io.Writer, row *Row) error {
	data, err := json.Marshal(row)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteNDJSON writes the campaign as newline-delimited JSON: one
// compact Row object per line, in scenario order, no envelope. NDJSON
// suits big sweeps — rows append and concatenate without re-parsing a
// document, and line-oriented tools consume them directly.
func WriteNDJSON(w io.Writer, rep *darco.CampaignReport, opts ...Option) error {
	return WriteNDJSONRows(w, Rows(rep, opts...))
}

// WriteNDJSONRows writes pre-flattened rows in NDJSON framing, one
// compact object per line in the given order.
func WriteNDJSONRows(w io.Writer, rows []Row) error {
	for i := range rows {
		if err := WriteNDJSONRow(w, &rows[i]); err != nil {
			return err
		}
	}
	return nil
}

// NDJSONStream writes campaign rows incrementally as scenarios finish,
// one compact JSON object per line strictly in scenario order — like
// CSVStream, the bytes are identical at any parallelism and match
// WriteNDJSON on the finished report.
type NDJSONStream struct {
	seq *rowSequencer
}

// NewNDJSONStream prepares to stream n scenario rows to w.
func NewNDJSONStream(w io.Writer, n int, opts ...Option) *NDJSONStream {
	s := &NDJSONStream{}
	s.seq = newRowSequencer("ndjson", n, newConfig(opts), func(row *Row) error {
		return WriteNDJSONRow(w, row)
	})
	return s
}

// Done records scenario i's outcome and flushes the contiguous
// completed prefix; it matches the WithScenarioDone hook signature.
func (s *NDJSONStream) Done(i int, sr *darco.ScenarioResult) { s.seq.done(i, sr) }

// Close reports whether every row was delivered and written.
func (s *NDJSONStream) Close() error { return s.seq.close() }
