package export

import (
	"fmt"
	"html/template"
	"io"
	"math"

	"strings"

	darco "darco"
)

// Dashboard palette: the validated reference categorical order (slots
// 1..7) with its dark-surface steps. Fig. 4 uses the first three slots
// (IM/BBM/SBM); Fig. 7 uses all seven for the overhead categories.
// Light-mode contrast warnings on slots 3–5 are relieved by the full
// table view at the bottom of the page.
var (
	seriesLight = []string{"#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300", "#4a3aa7"}
	seriesDark  = []string{"#3987e5", "#d95926", "#199e70", "#c98500", "#d55181", "#008300", "#9085e9"}
)

// chart geometry (pixels)
const (
	chartLabelW = 150 // left gutter for row labels
	chartPlotW  = 560 // plot width
	chartRowH   = 20  // row pitch
	chartBarH   = 14  // bar thickness (spec: <= 24)
	chartGap    = 2   // surface gap between stacked segments
	chartAxisH  = 22  // bottom axis band
	chartTopPad = 6
)

// barSeg is one rendered segment of a horizontal bar.
type barSeg struct {
	Path  string // SVG path (rounded data end only on the last segment)
	Color int    // 1-based series slot, matching --series-<n>
	Title string // native tooltip text
}

type chartRow struct {
	Label  string
	Segs   []barSeg
	Value  string // selective direct label at the bar end ("" = none)
	ValX   float64
	LabelY float64 // baseline for the row label text
}

type tick struct {
	X     float64
	Label string
}

type chartData struct {
	Title      string
	Subtitle   string
	W, H       int
	LabelX     float64 // right-aligned row-label anchor
	AxisY      float64 // gridline bottom
	AxisLabelY float64 // tick-label baseline
	Rows       []chartRow
	Ticks      []tick
	Legend     []legendItem // empty for single-series charts
}

type legendItem struct {
	Name  string
	Color int
}

// barPath renders a horizontal bar segment. The data end (rightmost
// segment) gets a 4px rounded cap; baseline and interior edges stay
// square.
func barPath(x, y, w, h float64, rounded bool) string {
	if w <= 0 {
		return ""
	}
	r := 4.0
	if !rounded || w < 2*r {
		return fmt.Sprintf("M%.1f,%.1f h%.1f v%.1f h%.1f Z", x, y, w, h, -w)
	}
	return fmt.Sprintf("M%.1f,%.1f h%.1f q%.1f,0 %.1f,%.1f v%.1f q0,%.1f %.1f,%.1f h%.1f Z",
		x, y, w-r, r, r, r, h-2*r, r, -r, r, -(w - r))
}

// niceMax rounds v up to a clean axis maximum (1/2/5 × 10^k).
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtNum(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// stackedChart builds a horizontal stacked-bar chart on a 0..100 % axis.
func stackedChart(title, subtitle string, rows []Row, names []string,
	values func(*Row) []float64) chartData {
	c := chartData{
		Title: title, Subtitle: subtitle,
		LabelX: chartLabelW - 8,
		W:      chartLabelW + chartPlotW + 60,
	}
	for i, n := range names {
		c.Legend = append(c.Legend, legendItem{Name: n, Color: i + 1})
	}
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		c.Ticks = append(c.Ticks, tick{X: chartLabelW + frac*chartPlotW, Label: fmt.Sprintf("%.0f%%", frac*100)})
	}
	y := float64(chartTopPad)
	for i := range rows {
		row := chartRow{Label: rows[i].Label(), LabelY: y + 11}
		vals := values(&rows[i])
		last := -1
		for s, v := range vals {
			if v > 0 {
				last = s
			}
		}
		// The 2px surface gap comes out of each interior segment's
		// width, so the stack's total span stays true to the axis.
		x := float64(chartLabelW)
		for s, v := range vals {
			w := v / 100 * chartPlotW
			if w <= 0 {
				continue
			}
			gap := 0.0
			if s != last {
				gap = chartGap
			}
			row.Segs = append(row.Segs, barSeg{
				Path:  barPath(x, y, math.Max(w-gap, 0.5), chartBarH, s == last),
				Color: s + 1,
				Title: fmt.Sprintf("%s — %s: %.1f%%", rows[i].Label(), names[s], v),
			})
			x += w
		}
		y += chartRowH
		c.Rows = append(c.Rows, row)
	}
	c.AxisY = y + 4
	c.AxisLabelY = c.AxisY + 14
	c.H = int(y) + chartAxisH
	return c
}

// barChart builds a single-series horizontal bar chart with a value
// label at every bar tip (the axis still carries the scale).
func barChart(title, subtitle string, rows []Row, unit string, value func(*Row) float64) chartData {
	c := chartData{
		Title: title, Subtitle: subtitle,
		LabelX: chartLabelW - 8,
		W:      chartLabelW + chartPlotW + 60,
	}
	maxV := 0.0
	for i := range rows {
		if v := value(&rows[i]); v > maxV {
			maxV = v
		}
	}
	axisMax := niceMax(maxV)
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		c.Ticks = append(c.Ticks, tick{X: chartLabelW + frac*chartPlotW, Label: fmtNum(frac * axisMax)})
	}
	y := float64(chartTopPad)
	for i := range rows {
		v := value(&rows[i])
		w := v / axisMax * chartPlotW
		row := chartRow{
			Label:  rows[i].Label(),
			LabelY: y + 11,
			Value:  fmtNum(v),
			ValX:   chartLabelW + w + 6,
		}
		row.Segs = append(row.Segs, barSeg{
			Path:  barPath(chartLabelW, y, w, chartBarH, true),
			Color: 1,
			Title: fmt.Sprintf("%s: %s%s", rows[i].Label(), fmtNum(v), unit),
		})
		y += chartRowH
		c.Rows = append(c.Rows, row)
	}
	c.AxisY = y + 4
	c.AxisLabelY = c.AxisY + 14
	c.H = int(y) + chartAxisH
	return c
}

// Label is the row's display name in charts and tables.
func (r *Row) Label() string { return r.Scenario }

type statTile struct {
	Value string
	Name  string
}

type dashboard struct {
	Title       string
	SeriesLight template.CSS
	SeriesDark  template.CSS
	Stats       []statTile
	Charts      []chartData
	Header      []string
	Records     [][]string
	HasErrors   bool
}

// overheadNames are Fig. 7's display names in canonical category order.
func overheadNames() []string {
	names := make([]string, len(overheadCats))
	for i, oc := range overheadCats {
		names[i] = oc.cat.String()
	}
	return names
}

// suiteOverheadRows aggregates the Fig. 7 breakdown per suite, in first-
// appearance order of suites across the campaign.
func suiteOverheadRows(rows []Row) []Row {
	var order []string
	agg := map[string]*Row{}
	for i := range rows {
		s := rows[i].Suite
		if s == "" || rows[i].Error != "" {
			continue
		}
		a, ok := agg[s]
		if !ok {
			a = &Row{Scenario: s, Overhead: map[string]uint64{}}
			agg[s] = a
			order = append(order, s)
		}
		for _, oc := range overheadCats {
			a.Overhead[oc.slug] += rows[i].Overhead[oc.slug]
		}
	}
	out := make([]Row, 0, len(order))
	for _, s := range order {
		out = append(out, *agg[s])
	}
	return out
}

func overheadShares(r *Row) []float64 {
	var total float64
	for _, oc := range overheadCats {
		total += float64(r.Overhead[oc.slug])
	}
	out := make([]float64, len(overheadCats))
	if total == 0 {
		return out
	}
	for i, oc := range overheadCats {
		out[i] = 100 * float64(r.Overhead[oc.slug]) / total
	}
	return out
}

// WriteHTML writes a self-contained static dashboard: headline tiles,
// the paper's Fig. 4–7 views as inline-SVG bar charts, and the full
// scenario table. No external assets or scripts; light and dark mode
// follow prefers-color-scheme.
func WriteHTML(w io.Writer, rep *darco.CampaignReport, opts ...Option) error {
	return WriteHTMLRows(w, Rows(rep, opts...), opts...)
}

// WriteHTMLRows renders the dashboard from pre-flattened rows — the
// same document WriteHTML produces for the report those rows came
// from. The options select table columns (WithWallTimes) but the row
// values are rendered as given.
func WriteHTMLRows(w io.Writer, rows []Row, opts ...Option) error {
	cfg := newConfig(opts)

	ok := make([]Row, 0, len(rows))
	var guestTotal uint64
	failed := 0
	for i := range rows {
		if rows[i].Error != "" {
			failed++
			continue
		}
		ok = append(ok, rows[i])
		guestTotal += rows[i].GuestInsns
	}

	d := dashboard{
		Title:       "DARCO campaign dashboard",
		SeriesLight: seriesCSS(seriesLight),
		SeriesDark:  seriesCSS(seriesDark),
		Stats: []statTile{
			{Value: fmt.Sprintf("%d", len(rows)), Name: "scenarios"},
			{Value: humanCount(guestTotal), Name: "guest instructions"},
			{Value: fmt.Sprintf("%d", failed), Name: "failed"},
		},
		HasErrors: failed > 0,
	}
	if len(ok) > 0 {
		d.Charts = append(d.Charts,
			stackedChart("Execution-mode distribution", "dynamic guest instructions per TOL mode (paper Fig. 4)",
				ok, []string{"IM", "BBM", "SBM"},
				func(r *Row) []float64 { return []float64{r.IMPct, r.BBMPct, r.SBMPct} }),
			barChart("Emulation cost in SBM", "host instructions per guest instruction in superblock mode (paper Fig. 5)",
				ok, " host/guest", func(r *Row) float64 { return r.SBMCost }),
			barChart("TOL overhead share", "translation layer share of the host instruction stream, % (paper Fig. 6)",
				ok, "%", func(r *Row) float64 { return r.TOLPct }),
			stackedChart("TOL overhead breakdown by suite", "share of TOL host instructions per activity (paper Fig. 7)",
				suiteOverheadRows(ok), overheadNames(), overheadShares),
		)
	}
	d.Header = csvHeader(&cfg)
	for i := range rows {
		d.Records = append(d.Records, csvRecord(&rows[i], &cfg))
	}
	return dashTmpl.Execute(w, &d)
}

// seriesCSS renders the palette slots as CSS custom properties.
func seriesCSS(colors []string) template.CSS {
	var b strings.Builder
	for i, c := range colors {
		fmt.Fprintf(&b, "--series-%d:%s;", i+1, c)
	}
	return template.CSS(b.String())
}

func humanCount(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fB", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --grid: #e3e2de;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  {{.SeriesLight}}
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --grid: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    {{.SeriesDark}}
  }
}
body { margin: 0; }
.viz-root {
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  padding: 24px 32px 48px;
  max-width: 860px;
  margin: 0 auto;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.stats { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 28px; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 18px; min-width: 120px;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .n { color: var(--text-secondary); font-size: 12px; }
figure { margin: 0 0 32px; }
figcaption { margin-bottom: 2px; }
figcaption .t { font-weight: 600; }
figcaption .s { color: var(--text-secondary); font-size: 12px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 6px 0 4px; font-size: 12px; color: var(--text-secondary); }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
svg { display: block; max-width: 100%; height: auto; }
svg text { fill: var(--text-secondary); font: 11px system-ui, sans-serif; }
svg .rowlabel { fill: var(--text-primary); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
table { border-collapse: collapse; font-size: 12px; width: 100%; overflow-x: auto; display: block; }
th, td { text-align: right; padding: 3px 8px; border-bottom: 1px solid var(--grid); white-space: nowrap; }
th:first-child, td:first-child, th:nth-child(2), td:nth-child(2), th:nth-child(4), td:nth-child(4) { text-align: left; }
th { color: var(--text-secondary); font-weight: 500; position: sticky; top: 0; background: var(--surface-1); }
.err { color: var(--text-secondary); }
h2 { font-size: 15px; margin: 36px 0 8px; }
</style>
</head>
<body>
<div class="viz-root">
<h1>{{.Title}}</h1>
<p class="sub">paper figures regenerated from one campaign &mdash; deterministic counters, scenario order</p>
<div class="stats">
{{range .Stats}}  <div class="tile"><div class="v">{{.Value}}</div><div class="n">{{.Name}}</div></div>
{{end}}</div>
{{range .Charts}}<figure>
<figcaption><span class="t">{{.Title}}</span><br><span class="s">{{.Subtitle}}</span></figcaption>
{{if gt (len .Legend) 1}}<div class="legend">{{range .Legend}}<span><span class="sw" style="background:var(--series-{{.Color}})"></span>{{.Name}}</span>{{end}}</div>{{end}}
<svg viewBox="0 0 {{.W}} {{.H}}" width="{{.W}}" height="{{.H}}" role="img" aria-label="{{.Title}}">
{{$c := .}}{{range .Ticks}}  <line class="grid" x1="{{.X}}" y1="0" x2="{{.X}}" y2="{{$c.AxisY}}"></line>
  <text x="{{.X}}" y="{{$c.AxisLabelY}}" text-anchor="middle">{{.Label}}</text>
{{end}}{{range .Rows}}  <text class="rowlabel" x="{{$c.LabelX}}" y="{{.LabelY}}" text-anchor="end">{{.Label}}</text>
{{range .Segs}}  <path d="{{.Path}}" fill="var(--series-{{.Color}})"><title>{{.Title}}</title></path>
{{end}}{{if .Value}}  <text x="{{.ValX}}" y="{{.LabelY}}">{{.Value}}</text>
{{end}}{{end}}</svg>
</figure>
{{end}}
<h2>All scenarios</h2>
<table>
<thead><tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr></thead>
<tbody>
{{range .Records}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</tbody>
</table>
</div>
</body>
</html>
`))
