package export_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	darco "darco"
	"darco/export"
	"darco/internal/testutil"
	"darco/internal/timing"
	"darco/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedScenarios is the exporter's pinned test campaign: three small
// workloads, one with the timing simulator attached so the cycles/ipc
// fields are exercised.
func fixedScenarios() []darco.Scenario {
	p1, _ := workload.ByName("429.mcf")
	p2, _ := workload.ByName("458.sjeng")
	p3, _ := workload.ByName("470.lbm")
	return []darco.Scenario{
		{Name: "429.mcf", Profile: p1, Scale: 0.05},
		{Name: "458.sjeng", Profile: p2, Scale: 0.05},
		{Name: "470.lbm-timing", Profile: p3, Scale: 0.05,
			Options: []darco.Option{darco.WithTiming(timing.DefaultConfig())}},
	}
}

func runCampaign(t *testing.T, parallelism int) *darco.CampaignReport {
	t.Helper()
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(), fixedScenarios(), darco.WithParallelism(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	return rep
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	testutil.CheckGolden(t, filepath.Join("testdata", name), got, *update, "go test ./export -update")
}

func TestGoldenJSONAndCSVRoundTrip(t *testing.T) {
	rep := runCampaign(t, 1)

	var jsonBuf bytes.Buffer
	if err := export.WriteJSON(&jsonBuf, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_golden.json", jsonBuf.Bytes())
	if !strings.Contains(jsonBuf.String(), `"schema": 1`) {
		t.Error("JSON document missing schema version")
	}
	if strings.Contains(jsonBuf.String(), "wall_ms") {
		t.Error("deterministic JSON export leaked wall-clock fields")
	}

	var csvBuf bytes.Buffer
	if err := export.WriteCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_golden.csv", csvBuf.Bytes())
	lines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
	if len(lines) != 1+len(rep.Results) {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), len(rep.Results))
	}
}

func TestParallelAndSerialCampaignsExportIdenticalBytes(t *testing.T) {
	serial := runCampaign(t, 1)
	parallel := runCampaign(t, 3)

	render := func(rep *darco.CampaignReport) (string, string, string) {
		var j, c, h bytes.Buffer
		if err := export.WriteJSON(&j, rep); err != nil {
			t.Fatal(err)
		}
		if err := export.WriteCSV(&c, rep); err != nil {
			t.Fatal(err)
		}
		if err := export.WriteHTML(&h, rep); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String(), h.String()
	}
	js, cs, hs := render(serial)
	jp, cp, hp := render(parallel)
	if js != jp {
		t.Error("JSON export differs between serial and parallel campaigns")
	}
	if cs != cp {
		t.Error("CSV export differs between serial and parallel campaigns")
	}
	if hs != hp {
		t.Error("HTML export differs between serial and parallel campaigns")
	}
}

func TestCSVStreamMatchesWholeReportWriter(t *testing.T) {
	scenarios := fixedScenarios()
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	stream, err := export.NewCSVStream(&streamed, len(scenarios))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(), scenarios,
		darco.WithParallelism(3), darco.WithScenarioDone(stream.Done))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := export.WriteCSV(&whole, rep); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != whole.String() {
		t.Errorf("streamed CSV differs from whole-report CSV:\n%s\nvs:\n%s", streamed.String(), whole.String())
	}
}

func TestGoldenNDJSON(t *testing.T) {
	rep := runCampaign(t, 1)
	var buf bytes.Buffer
	if err := export.WriteNDJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_golden.ndjson", buf.Bytes())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(rep.Results) {
		t.Fatalf("NDJSON has %d lines, want %d", len(lines), len(rep.Results))
	}
	for i, line := range lines {
		var row export.Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d is not a JSON object: %v", i, err)
		}
		if row.Scenario != rep.Results[i].Scenario.Name {
			t.Errorf("line %d is %q, want scenario order %q", i, row.Scenario, rep.Results[i].Scenario.Name)
		}
	}
	if strings.Contains(buf.String(), "wall_ms") {
		t.Error("deterministic NDJSON export leaked wall-clock fields")
	}
}

// TestNDJSONStreamParallelMatchesSerialBytes is the satellite
// acceptance test: the streaming NDJSON writer reorders
// completion-order rows to scenario order, so serial and parallel
// campaigns produce byte-identical output, which also matches the
// whole-report writer.
func TestNDJSONStreamParallelMatchesSerialBytes(t *testing.T) {
	scenarios := fixedScenarios()
	run := func(parallelism int) (string, *darco.CampaignReport) {
		eng, err := darco.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		var streamed bytes.Buffer
		stream := export.NewNDJSONStream(&streamed, len(scenarios))
		rep, err := eng.RunCampaign(context.Background(), scenarios,
			darco.WithParallelism(parallelism), darco.WithScenarioDone(stream.Done))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if err := stream.Close(); err != nil {
			t.Fatal(err)
		}
		return streamed.String(), rep
	}
	serial, _ := run(1)
	parallel, rep := run(3)
	if serial != parallel {
		t.Errorf("streamed NDJSON differs between serial and parallel campaigns:\n%s\nvs:\n%s", serial, parallel)
	}
	var whole bytes.Buffer
	if err := export.WriteNDJSON(&whole, rep); err != nil {
		t.Fatal(err)
	}
	if parallel != whole.String() {
		t.Errorf("streamed NDJSON differs from whole-report NDJSON:\n%s\nvs:\n%s", parallel, whole.String())
	}
}

func TestNDJSONStreamCloseIncomplete(t *testing.T) {
	var buf bytes.Buffer
	s := export.NewNDJSONStream(&buf, 2)
	s.Done(1, &darco.ScenarioResult{}) // out of order: row 0 never arrives
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "0 of 2") {
		t.Errorf("incomplete stream close error = %v", err)
	}
}

func TestFailedScenarioRow(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	rep := &darco.CampaignReport{Results: []darco.ScenarioResult{{
		Scenario: darco.Scenario{Name: "broken", Profile: p, Scale: 0.05},
		Err:      errors.New("boom, with \"quotes\" and, commas"),
	}}}
	rows := export.Rows(rep)
	if rows[0].Error == "" || rows[0].GuestInsns != 0 {
		t.Errorf("failed row not flagged: %+v", rows[0])
	}
	var csvBuf bytes.Buffer
	if err := export.WriteCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), `"error: boom, with ""quotes"" and, commas"`) {
		t.Errorf("CSV quoting broken:\n%s", csvBuf.String())
	}
	var htmlBuf bytes.Buffer
	if err := export.WriteHTML(&htmlBuf, rep); err != nil {
		t.Fatal(err)
	}
}

func TestWallTimesOptIn(t *testing.T) {
	rep := runCampaign(t, 1)
	var j bytes.Buffer
	if err := export.WriteJSON(&j, rep, export.WithWallTimes()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wall_ms", "parallelism", "guest_mips"} {
		if !strings.Contains(j.String(), want) {
			t.Errorf("WithWallTimes JSON missing %q", want)
		}
	}
	var c bytes.Buffer
	if err := export.WriteCSV(&c, rep, export.WithWallTimes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(c.String(), "\n", 2)[0], "wall_ms") {
		t.Error("WithWallTimes CSV header missing wall_ms")
	}
}

func TestHTMLDashboardContent(t *testing.T) {
	rep := runCampaign(t, 1)
	var h bytes.Buffer
	if err := export.WriteHTML(&h, rep); err != nil {
		t.Fatal(err)
	}
	out := h.String()
	for _, want := range []string{
		"<svg", "429.mcf", "470.lbm-timing",
		"Execution-mode distribution", "TOL overhead breakdown",
		"prefers-color-scheme: dark", "<table>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(out, "src=") || strings.Contains(out, "http://") || strings.Contains(out, "https://") {
		t.Error("dashboard references external assets; must be self-contained")
	}
}
